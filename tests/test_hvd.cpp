// Tests for src/hvd: context, tensor fusion, DistributedOptimizer,
// BroadcastGlobalVariables — including the key data-parallel equivalence
// the accuracy experiments rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/communicator.h"
#include "common/error.h"
#include "common/rng.h"
#include "hvd/broadcast.h"
#include "hvd/context.h"
#include "hvd/distributed_optimizer.h"
#include "hvd/fusion.h"
#include "hvd/parameter_server.h"
#include "io/synthetic.h"
#include "nn/model.h"

namespace candle::hvd {
namespace {

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

TEST(Context, ExposesRankSizeLocalRank) {
  comm::WorldOptions opt;
  opt.ranks_per_node = 6;
  comm::World::run(
      8,
      [](comm::Communicator& c) {
        Context ctx(c);
        EXPECT_EQ(ctx.rank(), c.rank());
        EXPECT_EQ(ctx.size(), 8u);
        EXPECT_EQ(ctx.local_rank(), c.rank() % 6);
        EXPECT_FALSE(ctx.has_timeline());
      },
      opt);
}

TEST(Context, RecordsToSharedTimeline) {
  trace::Timeline timeline;
  Stopwatch clock;
  comm::World::run(3, [&](comm::Communicator& c) {
    Context ctx(c, &timeline, &clock);
    ctx.record("TEST_EVENT", "test", 0.0, 0.5);
  });
  EXPECT_EQ(timeline.size(), 3u);
}

// ---------------------------------------------------------------------------
// Tensor fusion
// ---------------------------------------------------------------------------

TEST(Fusion, AveragesAcrossRanksCorrectly) {
  const std::size_t ranks = 4;
  comm::World::run(ranks, [&](comm::Communicator& c) {
    Context ctx(c);
    Tensor a({10}, static_cast<float>(c.rank()));
    Tensor b({20}, static_cast<float>(c.rank()) * 2.0f);
    allreduce_average_fused(ctx, {&a, &b});
    for (float v : a.values()) ASSERT_FLOAT_EQ(v, 1.5f);   // mean(0..3)
    for (float v : b.values()) ASSERT_FLOAT_EQ(v, 3.0f);   // mean(0,2,4,6)
  });
}

TEST(Fusion, BatchesSmallTensorsIntoOneCollective) {
  comm::World::run(2, [](comm::Communicator& c) {
    Context ctx(c);
    std::vector<Tensor> tensors;
    for (int i = 0; i < 10; ++i) tensors.emplace_back(Shape{100}, 1.0f);
    std::vector<Tensor*> ptrs;
    for (auto& t : tensors) ptrs.push_back(&t);
    const FusionStats stats = allreduce_average_fused(ctx, ptrs);
    EXPECT_EQ(stats.tensors, 10u);
    EXPECT_EQ(stats.collectives, 1u);  // all fit in one 64 MB buffer
    EXPECT_EQ(stats.fused_bytes, 10u * 100 * sizeof(float));
  });
}

TEST(Fusion, DisabledFusionIssuesOnePerTensor) {
  comm::World::run(2, [](comm::Communicator& c) {
    Context ctx(c);
    Tensor a({5}, 1.0f), b({5}, 2.0f);
    FusionOptions opt;
    opt.threshold_bytes = 0;
    const FusionStats stats = allreduce_average_fused(ctx, {&a, &b}, opt);
    EXPECT_EQ(stats.collectives, 2u);
  });
}

TEST(Fusion, SplitsWhenExceedingThreshold) {
  comm::World::run(2, [](comm::Communicator& c) {
    Context ctx(c);
    // Threshold of 130 floats; tensors of 60 floats pack pairwise:
    // {a, b} fuse, then {d} -> 2 collectives.
    FusionOptions opt;
    opt.threshold_bytes = 130 * sizeof(float);
    Tensor a({60}, 1.0f), b({60}, 1.0f), d({60}, 1.0f);
    const FusionStats stats = allreduce_average_fused(ctx, {&a, &b, &d}, opt);
    EXPECT_EQ(stats.collectives, 2u);
    for (float v : a.values()) ASSERT_FLOAT_EQ(v, 1.0f);
    for (float v : d.values()) ASSERT_FLOAT_EQ(v, 1.0f);
  });
}

TEST(Fusion, OversizedTensorReducedInPlace) {
  comm::World::run(2, [](comm::Communicator& c) {
    Context ctx(c);
    FusionOptions opt;
    opt.threshold_bytes = 16;  // 4 floats
    Tensor small({2}, static_cast<float>(c.rank()));
    Tensor big({100}, static_cast<float>(c.rank()));
    const FusionStats stats =
        allreduce_average_fused(ctx, {&small, &big}, opt);
    EXPECT_EQ(stats.collectives, 2u);
    for (float v : small.values()) ASSERT_FLOAT_EQ(v, 0.5f);
    for (float v : big.values()) ASSERT_FLOAT_EQ(v, 0.5f);
  });
}

TEST(Fusion, FusionReducesCollectiveCountVsUnfused) {
  // The ablation the paper's §2.2 motivates: fused Horovod issues far fewer
  // collectives for many small tensors.
  std::size_t fused_calls = 0, unfused_calls = 0;
  comm::World::run(2, [&](comm::Communicator& c) {
    Context ctx(c);
    std::vector<Tensor> tensors;
    for (int i = 0; i < 32; ++i) tensors.emplace_back(Shape{64}, 1.0f);
    std::vector<Tensor*> ptrs;
    for (auto& t : tensors) ptrs.push_back(&t);
    const auto fused = allreduce_average_fused(ctx, ptrs);
    FusionOptions off;
    off.threshold_bytes = 0;
    const auto unfused = allreduce_average_fused(ctx, ptrs, off);
    if (c.rank() == 0) {
      fused_calls = fused.collectives;
      unfused_calls = unfused.collectives;
    }
  });
  EXPECT_EQ(fused_calls, 1u);
  EXPECT_EQ(unfused_calls, 32u);
}

// ---------------------------------------------------------------------------
// Broadcast of parameters
// ---------------------------------------------------------------------------

TEST(BroadcastParams, AllRanksAdoptRootWeights) {
  comm::World::run(4, [](comm::Communicator& c) {
    Context ctx(c);
    Tensor w({16}, static_cast<float>(c.rank() + 1));
    Tensor b({4}, static_cast<float>(c.rank() * 10));
    broadcast_parameters(ctx, {&w, &b}, 0);
    for (float v : w.values()) ASSERT_FLOAT_EQ(v, 1.0f);
    for (float v : b.values()) ASSERT_FLOAT_EQ(v, 0.0f);
  });
}

TEST(BroadcastParams, HookBroadcastsAtTrainBegin) {
  // Compile each rank's model with a different seed; after one fit() with
  // the hook, rank-0 weights must have won everywhere — verified by all
  // ranks converging to identical parameters after identical updates.
  const std::size_t ranks = 3;
  std::vector<std::vector<float>> weights(ranks);
  comm::World::run(ranks, [&](comm::Communicator& c) {
    Context ctx(c);
    nn::Dataset data{Tensor({8, 4}, 0.5f), Tensor({8, 2})};
    for (std::size_t i = 0; i < 8; ++i) data.y.at(i, i % 2) = 1.0f;

    nn::Model m;
    m.add<nn::Dense>(2, nn::Act::kSoftmax);
    auto opt = std::make_unique<DistributedOptimizer>(
        nn::make_optimizer("sgd", 0.01), ctx);
    m.compile({4}, std::move(opt),
              nn::make_loss("categorical_crossentropy"),
              /*seed=*/100 + c.rank());  // rank-distinct init

    BroadcastGlobalVariablesHook hook(ctx, 0);
    nn::FitOptions fit;
    fit.epochs = 2;
    fit.batch_size = 4;
    fit.shuffle = false;
    (void)m.fit(data, fit, {&hook});

    std::vector<float> flat;
    for (Tensor* p : m.parameters())
      flat.insert(flat.end(), p->data(), p->data() + p->numel());
    weights[c.rank()] = flat;
  });
  for (std::size_t r = 1; r < ranks; ++r) {
    ASSERT_EQ(weights[0].size(), weights[r].size());
    for (std::size_t i = 0; i < weights[0].size(); ++i)
      ASSERT_FLOAT_EQ(weights[0][i], weights[r][i]) << "rank " << r;
  }
}

TEST(BroadcastParams, TimelineRecordsNegotiateAndBcast) {
  trace::Timeline timeline;
  Stopwatch clock;
  comm::World::run(2, [&](comm::Communicator& c) {
    Context ctx(c, &timeline, &clock);
    Tensor w({8}, 1.0f);
    broadcast_parameters(ctx, {&w}, 0);
  });
  bool has_negotiate = false, has_bcast = false;
  for (const auto& e : timeline.events()) {
    if (e.name == trace::kNegotiateBroadcast) has_negotiate = true;
    if (e.name == trace::kMpiBroadcast) has_bcast = true;
  }
  EXPECT_TRUE(has_negotiate);
  EXPECT_TRUE(has_bcast);
}

// ---------------------------------------------------------------------------
// DistributedOptimizer
// ---------------------------------------------------------------------------

TEST(DistributedOptimizer, AveragesGradientsBeforeApplying) {
  // Two ranks, gradients 0 and 2 -> averaged gradient 1 -> SGD step -lr.
  comm::World::run(2, [](comm::Communicator& c) {
    Context ctx(c);
    DistributedOptimizer opt(nn::make_optimizer("sgd", 0.1), ctx);
    Tensor w({4}, 1.0f);
    Tensor g({4}, static_cast<float>(c.rank()) * 2.0f);
    opt.apply({&w}, {&g});
    for (float v : w.values()) ASSERT_NEAR(v, 1.0f - 0.1f, 1e-6f);
  });
}

TEST(DistributedOptimizer, NameAndLrDelegation) {
  comm::World::run(1, [](comm::Communicator& c) {
    Context ctx(c);
    DistributedOptimizer opt(nn::make_optimizer("adam", 0.001), ctx);
    EXPECT_EQ(opt.name(), "distributed(adam)");
    opt.set_learning_rate(0.048);
    EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.048);
  });
}

TEST(DistributedOptimizer, KeepsRanksInLockstep) {
  // After identical initial weights and N distributed steps on different
  // data, all ranks hold identical weights (the core Horovod invariant).
  const std::size_t ranks = 4;
  std::vector<float> final_w(ranks);
  comm::World::run(ranks, [&](comm::Communicator& c) {
    Context ctx(c);
    DistributedOptimizer opt(nn::make_optimizer("sgd", 0.05), ctx);
    Tensor w({1}, 3.0f);
    Rng rng(500 + c.rank());
    for (int step = 0; step < 20; ++step) {
      Tensor g({1}, static_cast<float>(rng.normal(w[0] - 1.0, 0.1)));
      opt.apply({&w}, {&g});
    }
    final_w[c.rank()] = w[0];
  });
  for (std::size_t r = 1; r < ranks; ++r)
    ASSERT_FLOAT_EQ(final_w[0], final_w[r]);
}

TEST(DistributedOptimizer, StatefulOptimizersStayInLockstep) {
  // Adam keeps per-parameter moments on every rank; identical averaged
  // gradients must keep those states — and the weights — in sync.
  for (const char* name : {"adam", "rmsprop"}) {
    const std::size_t ranks = 3;
    std::vector<std::vector<float>> final_w(ranks);
    comm::World::run(ranks, [&](comm::Communicator& c) {
      Context ctx(c);
      DistributedOptimizer opt(nn::make_optimizer(name, 0.01), ctx);
      Tensor w({5}, 1.0f);
      Rng rng(900 + c.rank());
      for (int step = 0; step < 25; ++step) {
        Tensor g({5});
        for (float& v : g.values())
          v = static_cast<float>(rng.normal(0.3, 0.2));
        opt.apply({&w}, {&g});
      }
      final_w[c.rank()].assign(w.data(), w.data() + w.numel());
    });
    for (std::size_t r = 1; r < ranks; ++r)
      for (std::size_t i = 0; i < 5; ++i)
        ASSERT_FLOAT_EQ(final_w[0][i], final_w[r][i]) << name;
  }
}

TEST(DistributedOptimizer, SingleRankEqualsInnerOptimizer) {
  // P=1 Horovod must match plain training exactly.
  float distributed_result = 0.0f;
  comm::World::run(1, [&](comm::Communicator& c) {
    Context ctx(c);
    DistributedOptimizer opt(nn::make_optimizer("rmsprop", 0.01), ctx);
    Tensor w({1}, 5.0f);
    for (int i = 0; i < 30; ++i) {
      Tensor g({1}, 2.0f * (w[0] - 1.0f));
      opt.apply({&w}, {&g});
    }
    distributed_result = w[0];
  });
  nn::RmsProp plain(0.01);
  Tensor w({1}, 5.0f);
  for (int i = 0; i < 30; ++i) {
    Tensor g({1}, 2.0f * (w[0] - 1.0f));
    plain.apply({&w}, {&g});
  }
  EXPECT_FLOAT_EQ(distributed_result, w[0]);
}

// ---------------------------------------------------------------------------
// Parameter-server baseline
// ---------------------------------------------------------------------------

TEST(ParameterServer, MatchesAllreduceTrainingExactly) {
  // With sgd (stateless), PS and allreduce produce the same update
  // sequence; only traffic differs.
  const std::size_t ranks = 4;
  std::vector<float> ps_w, ring_w;
  for (const bool use_ps : {true, false}) {
    auto& out = use_ps ? ps_w : ring_w;
    comm::World::run(ranks, [&](comm::Communicator& c) {
      Context ctx(c);
      std::unique_ptr<nn::Optimizer> opt;
      if (use_ps) {
        opt = std::make_unique<ParameterServerOptimizer>(
            nn::make_optimizer("sgd", 0.1), ctx, /*server=*/1);
      } else {
        opt = std::make_unique<DistributedOptimizer>(
            nn::make_optimizer("sgd", 0.1), ctx);
      }
      Tensor w({6}, 2.0f);
      Rng rng(70 + c.rank());
      for (int step = 0; step < 15; ++step) {
        Tensor g({6});
        for (float& v : g.values())
          v = static_cast<float>(rng.normal(0.5, 0.2));
        opt->apply({&w}, {&g});
      }
      if (c.rank() == 0) out.assign(w.data(), w.data() + w.numel());
    });
  }
  ASSERT_EQ(ps_w.size(), ring_w.size());
  for (std::size_t i = 0; i < ps_w.size(); ++i)
    EXPECT_NEAR(ps_w[i], ring_w[i], 1e-5f);
}

TEST(ParameterServer, AllRanksHoldServerWeights) {
  const std::size_t ranks = 3;
  std::vector<std::vector<float>> weights(ranks);
  comm::World::run(ranks, [&](comm::Communicator& c) {
    Context ctx(c);
    ParameterServerOptimizer opt(nn::make_optimizer("adam", 0.01), ctx);
    Tensor w({4}, static_cast<float>(c.rank()));  // divergent start
    Tensor g({4}, 1.0f);
    opt.apply({&w}, {&g});
    weights[c.rank()].assign(w.data(), w.data() + w.numel());
  });
  // The pull overwrote everyone with the server's (rank 0) weights.
  for (std::size_t r = 1; r < ranks; ++r)
    for (std::size_t i = 0; i < 4; ++i)
      ASSERT_FLOAT_EQ(weights[0][i], weights[r][i]);
}

TEST(ParameterServer, TracksBytesThroughServer) {
  comm::World::run(2, [](comm::Communicator& c) {
    Context ctx(c);
    ParameterServerOptimizer opt(nn::make_optimizer("sgd", 0.1), ctx);
    Tensor w({100}, 1.0f);
    Tensor g({100}, 0.1f);
    opt.apply({&w}, {&g});
    opt.apply({&w}, {&g});
    // push + pull of 400 bytes, twice.
    EXPECT_EQ(opt.bytes_through_server(), 2u * 2 * 100 * sizeof(float));
  });
}

TEST(ParameterServer, StepCostGrowsLinearlyWithWorkers) {
  const std::size_t payload = 62 * 1024 * 1024;
  const double t48 = parameter_server_step_seconds(48, payload);
  const double t384 = parameter_server_step_seconds(384, payload);
  EXPECT_NEAR(t384 / t48, 383.0 / 47.0, 0.01);
  EXPECT_EQ(parameter_server_step_seconds(1, payload), 0.0);
}

TEST(ParameterServer, InvalidServerRankThrows) {
  comm::World::run(2, [](comm::Communicator& c) {
    Context ctx(c);
    auto make_bad = [&] {
      return std::make_unique<ParameterServerOptimizer>(
          nn::make_optimizer("sgd", 0.1), ctx, /*server_rank=*/5);
    };
    EXPECT_THROW((void)make_bad(), InvalidArgument);
  });
}

// The equivalence the accuracy experiments rely on (DESIGN.md §2): when all
// ranks hold the SAME dataset and batch order, P-rank Horovod training is
// identical to 1-rank training, because averaging identical gradients is the
// identity. Verified end-to-end through Model::fit.
TEST(DistributedOptimizer, IdenticalDataEquivalenceAcrossRanks) {
  io::ClassificationSpec spec;
  spec.samples = 60;
  spec.features = 6;
  spec.classes = 2;
  spec.informative = 6;
  spec.class_sep = 1.5;
  spec.noise = 1.0;
  spec.seed = 77;
  const nn::Dataset data = io::make_classification(spec);

  auto train = [&](std::size_t ranks) {
    std::vector<float> rank0;
    comm::World::run(ranks, [&](comm::Communicator& c) {
      Context ctx(c);
      nn::Model m;
      m.add<nn::Dense>(8, nn::Act::kTanh);
      m.add<nn::Dense>(2, nn::Act::kSoftmax);
      auto opt = std::make_unique<DistributedOptimizer>(
          nn::make_optimizer("sgd", 0.05), ctx);
      m.compile({6}, std::move(opt),
                nn::make_loss("categorical_crossentropy"), /*seed=*/9);
      nn::FitOptions fit;
      fit.epochs = 5;
      fit.batch_size = 20;
      fit.shuffle = false;  // identical batch order on every rank
      (void)m.fit(data, fit);
      if (c.rank() == 0) {
        for (Tensor* p : m.parameters())
          rank0.insert(rank0.end(), p->data(), p->data() + p->numel());
      }
    });
    return rank0;
  };

  const std::vector<float> w1 = train(1);
  const std::vector<float> w4 = train(4);
  ASSERT_EQ(w1.size(), w4.size());
  for (std::size_t i = 0; i < w1.size(); ++i)
    ASSERT_NEAR(w1[i], w4[i], 1e-5f) << i;
}

}  // namespace
}  // namespace candle::hvd
