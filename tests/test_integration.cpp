// Integration tests: the full real-mode pipeline (CSV on disk -> parallel
// loaders -> broadcast -> distributed training -> evaluation) across rank
// threads, plus cross-checks against the simulator's phase structure.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "candle/runner.h"
#include "common/error.h"
#include "io/csv_reader.h"
#include "sim/run_sim.h"

namespace candle {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("candle_runner_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    config_.workdir = dir_.string();
    config_.scale = 0.0012;
    config_.total_epochs = 4;
    config_.ranks = 2;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  RealRunConfig config_;
};

TEST_F(RunnerTest, PreparesCsvsWithExpectedGeometry) {
  const auto [train_path, test_path] = prepare_benchmark_csvs(config_);
  EXPECT_TRUE(std::filesystem::exists(train_path));
  EXPECT_TRUE(std::filesystem::exists(test_path));
  const io::DataFrame df =
      io::read_csv_chunked(train_path);
  const ScaledGeometry g = scaled_geometry(config_.benchmark, config_.scale);
  EXPECT_EQ(df.rows, g.train_samples);
  EXPECT_EQ(df.cols, g.features + 1);  // label column for NT3
}

TEST_F(RunnerTest, EndToEndNt3TwoRanks) {
  const RealRunResult r = run_real(config_);
  EXPECT_EQ(r.epochs_rank0, 2u);  // 4 epochs / 2 ranks
  EXPECT_GT(r.data_load_s, 0.0);
  EXPECT_GT(r.train_s, 0.0);
  EXPECT_GT(r.total_s, r.train_s);
  EXPECT_EQ(r.history.epochs.size(), 2u);
  EXPECT_GT(r.final_accuracy, 0.4f);  // it trained on real data
  EXPECT_EQ(r.comm_stats.size(), 2u);
  // One allreduce per batch step per epoch, plus one for the test-metric
  // aggregation at evaluation.
  const std::size_t steps = r.history.epochs[0].batch_steps;
  EXPECT_EQ(r.comm_stats[0].allreduce_calls, 2u * steps + 1);
  // BroadcastGlobalVariables issued one broadcast per parameter tensor.
  EXPECT_GT(r.comm_stats[0].broadcast_calls, 0u);
}

TEST_F(RunnerTest, AllLoadersProduceSameTrainingOutcome) {
  // The optimization must not change results, only speed (paper §5).
  config_.ranks = 1;
  config_.total_epochs = 2;
  float acc[3];
  int i = 0;
  for (auto loader : {io::LoaderKind::kOriginal, io::LoaderKind::kChunked,
                      io::LoaderKind::kDask}) {
    config_.loader = loader;
    acc[i++] = run_real(config_).final_accuracy;
  }
  EXPECT_FLOAT_EQ(acc[0], acc[1]);
  EXPECT_FLOAT_EQ(acc[0], acc[2]);
}

TEST_F(RunnerTest, WeakScalingRunsFullEpochsPerRank) {
  config_.weak_scaling = true;
  config_.total_epochs = 3;
  const RealRunResult r = run_real(config_);
  EXPECT_EQ(r.epochs_rank0, 3u);
}

TEST_F(RunnerTest, StrongScalingWithTooManyRanksThrows) {
  config_.ranks = 8;
  config_.total_epochs = 4;  // 0 epochs per rank
  EXPECT_THROW(run_real(config_), InvalidArgument);
}

TEST_F(RunnerTest, TimelineRecordsPaperPhases) {
  config_.record_timeline = true;
  const RealRunResult r = run_real(config_);
  ASSERT_NE(r.timeline, nullptr);
  bool saw_load = false, saw_negotiate = false, saw_bcast = false,
       saw_allreduce = false;
  for (const auto& e : r.timeline->events()) {
    if (e.name == trace::kDataLoading) saw_load = true;
    if (e.name == trace::kNegotiateBroadcast) saw_negotiate = true;
    if (e.name == trace::kMpiBroadcast) saw_bcast = true;
    if (e.name == trace::kNcclAllreduce) saw_allreduce = true;
  }
  EXPECT_TRUE(saw_load);
  EXPECT_TRUE(saw_negotiate);
  EXPECT_TRUE(saw_bcast);
  EXPECT_TRUE(saw_allreduce);
}

TEST_F(RunnerTest, P1b2RunsWithRmsprop) {
  config_.benchmark = BenchmarkId::kP1B2;
  config_.total_epochs = 2;
  config_.ranks = 2;
  const RealRunResult r = run_real(config_);
  EXPECT_GT(r.final_accuracy, 0.0f);
  EXPECT_EQ(r.epochs_rank0, 1u);
}

TEST_F(RunnerTest, P1b1AutoencoderReconstructs) {
  config_.benchmark = BenchmarkId::kP1B1;
  config_.total_epochs = 2;
  config_.ranks = 1;
  const RealRunResult r = run_real(config_);
  EXPECT_LT(r.final_loss, 0.5f);  // MSE on [0,1] data after training
}

TEST_F(RunnerTest, P1b3RegressionWithBatchScaling) {
  config_.benchmark = BenchmarkId::kP1B3;
  config_.total_epochs = 1;
  config_.weak_scaling = true;
  config_.ranks = 2;
  config_.batch_scaling = BatchScaling::kCbrt;
  const RealRunResult r = run_real(config_);
  EXPECT_GT(r.train_s, 0.0);
}

TEST_F(RunnerTest, LoaderChoiceIsVisibleInLoadStats) {
  // The runner's scaled CSVs are narrow (few hundred columns), where the
  // paper itself reports near-parity between loaders (P1B3 row of Table 3),
  // so the check here is structural: the selected reader really ran.
  config_.ranks = 1;
  config_.total_epochs = 1;
  config_.loader = io::LoaderKind::kOriginal;
  const RealRunResult orig = run_real(config_);
  EXPECT_GT(orig.load_stats.piece_allocs, 0u);  // low_memory piece churn
  config_.loader = io::LoaderKind::kChunked;
  const RealRunResult chunk = run_real(config_);
  EXPECT_EQ(chunk.load_stats.piece_allocs, 0u);
  EXPECT_EQ(orig.load_stats.rows, chunk.load_stats.rows);
  EXPECT_EQ(orig.load_stats.cols, chunk.load_stats.cols);
}

TEST_F(RunnerTest, LrScalingToggleChangesOptimizerRate) {
  // Covered indirectly: identical runs with and without lr scaling diverge
  // in final loss for ranks > 1.
  config_.ranks = 2;
  config_.total_epochs = 4;
  config_.scale_lr = true;
  const float with_scaling = run_real(config_).final_loss;
  config_.scale_lr = false;
  const float without_scaling = run_real(config_).final_loss;
  EXPECT_NE(with_scaling, without_scaling);
}

TEST_F(RunnerTest, P2b1ExtensionRunsEndToEnd) {
  config_.benchmark = BenchmarkId::kP2B1;
  config_.total_epochs = 2;
  config_.ranks = 2;
  const RealRunResult r = run_real(config_);
  EXPECT_EQ(r.epochs_rank0, 1u);
  EXPECT_LT(r.final_loss, 0.5f);  // autoencoder MSE on [0,1] data
}

TEST_F(RunnerTest, P3b1ExtensionRunsEndToEnd) {
  config_.benchmark = BenchmarkId::kP3B1;
  config_.weak_scaling = true;
  config_.total_epochs = 4;
  config_.ranks = 2;
  const RealRunResult r = run_real(config_);
  EXPECT_GT(r.final_accuracy, 0.2f);  // 10-way chance is 0.1
  // The label column round-tripped through the CSV on every rank.
  const ScaledGeometry g = scaled_geometry(config_.benchmark, config_.scale);
  EXPECT_EQ(r.load_stats.cols, g.features + 1);
}

TEST_F(RunnerTest, BatchStepLevelShardsTheDataset) {
  // Fig 3's batch-step-level parallelism: each epoch's steps divide by the
  // rank count because every rank trains only on its shard.
  config_.weak_scaling = true;
  config_.total_epochs = 2;
  config_.ranks = 1;
  const RealRunResult full = run_real(config_);
  config_.ranks = 4;
  config_.level = sim::ParallelLevel::kBatchStep;
  const RealRunResult sharded = run_real(config_);
  const std::size_t full_steps = full.history.epochs[0].batch_steps;
  const std::size_t shard_steps = sharded.history.epochs[0].batch_steps;
  EXPECT_EQ(shard_steps, (full_steps + 3) / 4);
  EXPECT_GT(sharded.final_accuracy, 0.4f);  // still learns on the shard
}

TEST_F(RunnerTest, ShardedRanksStayInLockstep) {
  // All ranks must make identical allreduce counts despite distinct shards.
  config_.weak_scaling = true;
  config_.total_epochs = 3;
  config_.ranks = 3;
  config_.level = sim::ParallelLevel::kBatchStep;
  const RealRunResult r = run_real(config_);
  for (std::size_t rank = 1; rank < 3; ++rank)
    EXPECT_EQ(r.comm_stats[0].allreduce_calls,
              r.comm_stats[rank].allreduce_calls);
}

TEST_F(RunnerTest, CheckpointsAreWrittenAndResumable) {
  // §7 future work: checkpoint/restart for fault tolerance.
  config_.checkpoint_every = 1;
  config_.total_epochs = 4;
  config_.ranks = 2;
  const RealRunResult first = run_real(config_);
  EXPECT_EQ(first.checkpoints_written, 2u);  // 2 epochs per rank
  EXPECT_FALSE(first.resumed_from_checkpoint);
  EXPECT_TRUE(std::filesystem::exists(checkpoint_path(config_)));

  // "Crash" happened; restart resumes from the checkpoint. The resumed run
  // must start from trained weights: its first-epoch loss is below the
  // cold run's first-epoch loss.
  config_.resume = true;
  const RealRunResult resumed = run_real(config_);
  EXPECT_TRUE(resumed.resumed_from_checkpoint);
  EXPECT_LT(resumed.history.epochs.front().loss,
            first.history.epochs.front().loss);
}

TEST_F(RunnerTest, ResumeWithoutCheckpointIsColdStart) {
  config_.resume = true;  // nothing saved yet for this seed
  config_.seed = 991;
  const RealRunResult r = run_real(config_);
  EXPECT_FALSE(r.resumed_from_checkpoint);
}

// ---------------------------------------------------------------------------
// Real-vs-simulated cross-check
// ---------------------------------------------------------------------------

TEST(RealVsSim, PhaseStructureMatches) {
  // The simulator and the real runner expose the same phases; the real
  // run's phase set must be a subset of the simulated schedule's.
  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  sim::RunPlan plan;
  plan.ranks = 6;
  plan.epochs_per_rank = 2;
  plan.make_timeline = true;
  const sim::SimResult s = simulator.simulate(plan);
  ASSERT_NE(s.timeline, nullptr);

  std::set<std::string> sim_names;
  for (const auto& e : s.timeline->events()) sim_names.insert(e.name);
  for (const char* required :
       {trace::kDataLoading, trace::kPreprocessing,
        trace::kNegotiateBroadcast, trace::kMpiBroadcast,
        trace::kComputeGradients, trace::kNegotiateAllreduce,
        trace::kNcclAllreduce, trace::kEvaluation})
    EXPECT_TRUE(sim_names.count(required)) << required;
}

TEST(RealVsSim, StrongScalingShapeAgreesAtSmallScale) {
  // Under strong scaling the per-rank epoch count shrinks with ranks. The
  // real runner executes exactly comp_epochs worth of work per rank (on
  // this single-core host wall-clock cannot shrink — the threads share one
  // CPU — so the check is on work division), and the simulator's training
  // time shrinks accordingly.
  RealRunConfig config;
  config.workdir = std::filesystem::temp_directory_path().string();
  config.scale = 0.0012;
  config.total_epochs = 4;
  config.ranks = 1;
  const RealRunResult real1 = run_real(config);
  config.ranks = 4;
  const RealRunResult real4 = run_real(config);
  EXPECT_EQ(real1.epochs_rank0, 4u);
  EXPECT_EQ(real4.epochs_rank0, 1u);
  EXPECT_EQ(real1.history.epochs.size(), 4 * real4.history.epochs.size());

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  sim::RunPlan plan;
  plan.ranks = 1;
  plan.epochs_per_rank = 4;
  const double sim1 = simulator.simulate(plan).phases.train();
  plan.ranks = 4;
  plan.epochs_per_rank = 1;
  const double sim4 = simulator.simulate(plan).phases.train();
  EXPECT_LT(sim4, sim1);
}

}  // namespace
}  // namespace candle
