// Tests for src/io: CSV writer, the three readers (equivalence + the
// performance shape behind the paper's optimization), synthetic data.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "io/binary_cache.h"
#include "io/csv_reader.h"
#include "io/csv_writer.h"
#include "io/synthetic.h"
#include "nn/metrics.h"
#include "nn/model.h"

namespace candle::io {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("candle_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream out(path(name), std::ios::binary);
    out << content;
  }

  std::filesystem::path dir_;
};

using CsvWriterTest = TempDir;
using CsvReaderTest = TempDir;
using SyntheticTest = TempDir;

// ---------------------------------------------------------------------------
// CsvWriter
// ---------------------------------------------------------------------------

TEST_F(CsvWriterTest, WritesRows) {
  {
    CsvWriter w(path("a.csv"));
    const float row[] = {1.5f, 2.0f};
    w.write_row(row);
    w.write_labeled_row(1, row);
    w.close();
  }
  std::ifstream in(path("a.csv"));
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::getline(in, line);
  EXPECT_EQ(line, "1,1.5,2");
}

TEST_F(CsvWriterTest, ReportsBytesWritten) {
  CsvWriter w(path("b.csv"));
  const float row[] = {1.0f};
  w.write_row(row);
  const std::size_t bytes = w.close();
  EXPECT_EQ(bytes, 2u);  // "1\n"
  EXPECT_EQ(std::filesystem::file_size(path("b.csv")), 2u);
}

TEST_F(CsvWriterTest, OpenFailureThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zz/x.csv"), IoError);
}

// ---------------------------------------------------------------------------
// Readers: correctness
// ---------------------------------------------------------------------------

TEST_F(CsvReaderTest, AllReadersParseIdenticalFrames) {
  write_synthetic_csv(path("data.csv"), {200, 37, false}, 9);
  const DataFrame a = read_csv_original(path("data.csv"));
  const DataFrame b = read_csv_chunked(path("data.csv"));
  const DataFrame c = read_csv_dask(path("data.csv"), nullptr, 4);
  ASSERT_EQ(a.rows, 200u);
  ASSERT_EQ(a.cols, 37u);
  ASSERT_EQ(b.rows, a.rows);
  ASSERT_EQ(c.rows, a.rows);
  ASSERT_EQ(b.cols, a.cols);
  ASSERT_EQ(c.cols, a.cols);
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data[i], b.data[i]) << i;
    EXPECT_FLOAT_EQ(a.data[i], c.data[i]) << i;
  }
}

TEST_F(CsvReaderTest, ParsesKnownValues) {
  write_file("k.csv", "1,2.5,-3\n4e2,0.125,6\n");
  for (auto kind : {LoaderKind::kOriginal, LoaderKind::kChunked,
                    LoaderKind::kDask}) {
    const DataFrame df = read_csv(path("k.csv"), kind);
    ASSERT_EQ(df.rows, 2u) << loader_name(kind);
    ASSERT_EQ(df.cols, 3u);
    EXPECT_FLOAT_EQ(df.at(0, 1), 2.5f);
    EXPECT_FLOAT_EQ(df.at(0, 2), -3.0f);
    EXPECT_FLOAT_EQ(df.at(1, 0), 400.0f);
    EXPECT_FLOAT_EQ(df.at(1, 1), 0.125f);
  }
}

TEST_F(CsvReaderTest, HandlesCrLfAndMissingTrailingNewline) {
  write_file("crlf.csv", "1,2\r\n3,4\r\n5,6");
  for (auto kind : {LoaderKind::kOriginal, LoaderKind::kChunked}) {
    const DataFrame df = read_csv(path("crlf.csv"), kind);
    ASSERT_EQ(df.rows, 3u);
    EXPECT_FLOAT_EQ(df.at(2, 1), 6.0f);
  }
}

TEST_F(CsvReaderTest, EmptyFieldsParseAsZero) {
  write_file("empty.csv", "1,,3\n,5,\n");
  const DataFrame df = read_csv_chunked(path("empty.csv"));
  EXPECT_FLOAT_EQ(df.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(df.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(df.at(1, 2), 0.0f);
}

TEST_F(CsvReaderTest, IntegerColumnsSurviveOriginalDtypeInference) {
  // The original reader tries int64 first; integers must round-trip.
  write_file("ints.csv", "7,-12\n1000000,0\n");
  const DataFrame df = read_csv_original(path("ints.csv"));
  EXPECT_FLOAT_EQ(df.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(df.at(0, 1), -12.0f);
  EXPECT_FLOAT_EQ(df.at(1, 0), 1000000.0f);
}

TEST_F(CsvReaderTest, RaggedRowsThrow) {
  write_file("ragged.csv", "1,2,3\n4,5\n");
  EXPECT_THROW(read_csv_original(path("ragged.csv")), IoError);
  EXPECT_THROW(read_csv_chunked(path("ragged.csv")), IoError);
}

TEST_F(CsvReaderTest, MalformedNumberThrows) {
  write_file("bad.csv", "1,zzz\n");
  EXPECT_THROW(read_csv_chunked(path("bad.csv")), IoError);
  EXPECT_THROW(read_csv_original(path("bad.csv")), IoError);
}

TEST_F(CsvReaderTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_chunked(path("nope.csv")), IoError);
}

TEST_F(CsvReaderTest, EmptyFileThrows) {
  write_file("zero.csv", "");
  EXPECT_THROW(read_csv_chunked(path("zero.csv")), IoError);
  EXPECT_THROW(read_csv_original(path("zero.csv")), IoError);
}

TEST_F(CsvReaderTest, RowsSpanningChunkBoundaries) {
  // Rows wider than the reader chunk exercise the carry path.
  const std::size_t cols = 3000;
  write_synthetic_csv(path("wide.csv"), {5, cols, false}, 4);
  const DataFrame a = read_csv_original(path("wide.csv"), nullptr, 4096);
  const DataFrame b = read_csv_chunked(path("wide.csv"), nullptr, 4096);
  ASSERT_EQ(a.rows, 5u);
  ASSERT_EQ(a.cols, cols);
  for (std::size_t i = 0; i < a.data.size(); ++i)
    ASSERT_FLOAT_EQ(a.data[i], b.data[i]) << i;
}

TEST_F(CsvReaderTest, StatsAreReported) {
  write_synthetic_csv(path("s.csv"), {100, 50, false}, 1);
  CsvReadStats orig_stats, chunk_stats;
  (void)read_csv_original(path("s.csv"), &orig_stats, 4096);
  (void)read_csv_chunked(path("s.csv"), &chunk_stats);
  EXPECT_EQ(orig_stats.rows, 100u);
  EXPECT_EQ(orig_stats.cols, 50u);
  EXPECT_GT(orig_stats.chunks, 1u);
  EXPECT_GT(orig_stats.piece_allocs, 50u);  // per (chunk, column)
  EXPECT_EQ(chunk_stats.piece_allocs, 0u);
  EXPECT_GT(orig_stats.seconds, 0.0);
  EXPECT_EQ(chunk_stats.bytes, orig_stats.bytes);
}

TEST_F(CsvReaderTest, DaskSegmentCountRespected) {
  write_synthetic_csv(path("d.csv"), {64, 8, false}, 2);
  CsvReadStats stats;
  (void)read_csv_dask(path("d.csv"), &stats, 8);
  EXPECT_GE(stats.chunks, 2u);
  EXPECT_LE(stats.chunks, 8u);
}

// The paper's Table 3 shape: the chunked reader beats the original by a
// large factor on WIDE files and by much less on NARROW files of similar
// byte size (this is the heart of the optimization).
TEST_F(CsvReaderTest, ChunkedBeatsOriginalOnWideFiles) {
  // ~7 MB, 20,000 columns: like NT3's 60,483-column geometry, each row is
  // comparable to the low_memory chunk, so pieces ~ cells.
  write_synthetic_csv(path("wide2.csv"), {40, 20000, false}, 3);
  CsvReadStats orig_stats, chunk_stats;
  (void)read_csv_original(path("wide2.csv"), &orig_stats);
  (void)read_csv_chunked(path("wide2.csv"), &chunk_stats);
  EXPECT_GT(orig_stats.seconds / chunk_stats.seconds, 2.0)
      << "original=" << orig_stats.seconds
      << "s chunked=" << chunk_stats.seconds << "s";
}

TEST_F(CsvReaderTest, NarrowFilesShowMuchSmallerGap) {
  // Same byte volume, 100 columns (P1B3-like geometry).
  write_synthetic_csv(path("narrow.csv"), {8000, 100, false}, 3);
  CsvReadStats orig_stats, chunk_stats;
  (void)read_csv_original(path("narrow.csv"), &orig_stats);
  (void)read_csv_chunked(path("narrow.csv"), &chunk_stats);
  const double narrow_ratio = orig_stats.seconds / chunk_stats.seconds;

  write_synthetic_csv(path("wide3.csv"), {40, 20000, false}, 3);
  CsvReadStats worig, wchunk;
  (void)read_csv_original(path("wide3.csv"), &worig);
  (void)read_csv_chunked(path("wide3.csv"), &wchunk);
  const double wide_ratio = worig.seconds / wchunk.seconds;

  EXPECT_GT(wide_ratio, narrow_ratio)
      << "wide=" << wide_ratio << " narrow=" << narrow_ratio;
}

TEST_F(CsvReaderTest, LoaderNames) {
  EXPECT_NE(loader_name(LoaderKind::kOriginal).find("original"),
            std::string::npos);
  EXPECT_NE(loader_name(LoaderKind::kChunked).find("low_memory=False"),
            std::string::npos);
  EXPECT_NE(loader_name(LoaderKind::kDask).find("dask"), std::string::npos);
}

// ---------------------------------------------------------------------------
// read_csv_selected: header skip + usecols (CANDLE loader options)
// ---------------------------------------------------------------------------

TEST_F(CsvReaderTest, SelectedSkipsHeaderRows) {
  write_file("hdr.csv", "900,901\n1,2\n3,4\n");
  CsvSelect select;
  select.skip_rows = 1;
  const DataFrame df = read_csv_selected(path("hdr.csv"), select);
  ASSERT_EQ(df.rows, 2u);
  EXPECT_FLOAT_EQ(df.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(df.at(1, 1), 4.0f);
}

TEST_F(CsvReaderTest, SelectedPicksColumnSubsetInAscendingOrder) {
  write_file("cols.csv", "10,11,12,13\n20,21,22,23\n");
  CsvSelect select;
  select.usecols = {3, 0};  // order does not matter
  const DataFrame df = read_csv_selected(path("cols.csv"), select);
  ASSERT_EQ(df.cols, 2u);
  EXPECT_FLOAT_EQ(df.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(df.at(0, 1), 13.0f);
  EXPECT_FLOAT_EQ(df.at(1, 1), 23.0f);
}

TEST_F(CsvReaderTest, SelectedDefaultsMatchChunkedReader) {
  write_synthetic_csv(path("sel.csv"), {50, 9, false}, 6);
  const DataFrame a = read_csv_chunked(path("sel.csv"));
  const DataFrame b = read_csv_selected(path("sel.csv"), {});
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  for (std::size_t i = 0; i < a.data.size(); ++i)
    ASSERT_FLOAT_EQ(a.data[i], b.data[i]);
}

TEST_F(CsvReaderTest, SelectedValidatesUsecols) {
  write_file("v.csv", "1,2\n");
  CsvSelect out_of_range;
  out_of_range.usecols = {5};
  EXPECT_THROW(read_csv_selected(path("v.csv"), out_of_range), IoError);
  CsvSelect dup;
  dup.usecols = {1, 1};
  EXPECT_THROW(read_csv_selected(path("v.csv"), dup), IoError);
}

TEST_F(CsvReaderTest, SelectedSkipAllRowsThrows) {
  write_file("s2.csv", "1,2\n3,4\n");
  CsvSelect select;
  select.skip_rows = 10;
  EXPECT_THROW(read_csv_selected(path("s2.csv"), select), IoError);
}

// Property sweep: both readers parse identically for any chunk size and any
// file geometry (rows spanning chunks, chunks spanning rows, tiny files).
struct ReaderSweepParams {
  std::size_t rows, cols, chunk_bytes;
};

class ReaderChunkSweep
    : public ::testing::TestWithParam<ReaderSweepParams> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("candle_sweep_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_P(ReaderChunkSweep, ChunkSizeNeverChangesTheParse) {
  const auto [rows, cols, chunk] = GetParam();
  const std::string path = (dir_ / "sweep.csv").string();
  write_synthetic_csv(path, {rows, cols, false}, rows * 7 + cols);
  const DataFrame reference = read_csv_chunked(path);  // default chunk
  const DataFrame orig = read_csv_original(path, nullptr, chunk);
  const DataFrame chunked = read_csv_chunked(path, nullptr, chunk);
  ASSERT_EQ(orig.rows, rows);
  ASSERT_EQ(orig.cols, cols);
  ASSERT_EQ(chunked.rows, rows);
  for (std::size_t i = 0; i < reference.data.size(); ++i) {
    ASSERT_FLOAT_EQ(orig.data[i], reference.data[i]) << i;
    ASSERT_FLOAT_EQ(chunked.data[i], reference.data[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReaderChunkSweep,
    ::testing::Values(ReaderSweepParams{1, 1, 4096},
                      ReaderSweepParams{3, 500, 4096},   // row ~ chunk
                      ReaderSweepParams{200, 7, 4096},
                      ReaderSweepParams{17, 1000, 8192},  // row > chunk
                      ReaderSweepParams{64, 64, 65536},   // file < chunk
                      ReaderSweepParams{500, 3, 4096}));

// ---------------------------------------------------------------------------
// Binary frame cache (the beyond-the-paper loader)
// ---------------------------------------------------------------------------

using BinaryCacheTest = TempDir;

TEST_F(BinaryCacheTest, SaveLoadRoundTrip) {
  write_synthetic_csv(path("c.csv"), {40, 12, false}, 8);
  const DataFrame original = read_csv_chunked(path("c.csv"));
  save_frame(original, path("c.bin"));
  CsvReadStats stats;
  const DataFrame loaded = load_frame(path("c.bin"), &stats);
  ASSERT_EQ(loaded.rows, original.rows);
  ASSERT_EQ(loaded.cols, original.cols);
  for (std::size_t i = 0; i < loaded.data.size(); ++i)
    ASSERT_FLOAT_EQ(loaded.data[i], original.data[i]);
  EXPECT_EQ(stats.chunks, 0u);  // no parsing happened
}

TEST_F(BinaryCacheTest, CachedReadHitsAfterFirstMiss) {
  write_synthetic_csv(path("d.csv"), {30, 10, false}, 9);
  CsvReadStats miss_stats;
  const DataFrame first = read_csv_cached(path("d.csv"),
                                          LoaderKind::kChunked, &miss_stats);
  EXPECT_GT(miss_stats.chunks, 0u);  // parsed the CSV
  EXPECT_TRUE(is_cached_frame(cache_path_for(path("d.csv"))));

  CsvReadStats hit_stats;
  const DataFrame second = read_csv_cached(path("d.csv"),
                                           LoaderKind::kChunked, &hit_stats);
  EXPECT_EQ(hit_stats.chunks, 0u);  // served from the cache
  ASSERT_EQ(second.data.size(), first.data.size());
  for (std::size_t i = 0; i < first.data.size(); ++i)
    ASSERT_FLOAT_EQ(first.data[i], second.data[i]);
}

TEST_F(BinaryCacheTest, StaleCacheInvalidatedWhenCsvChanges) {
  write_synthetic_csv(path("e.csv"), {30, 10, false}, 1);
  (void)read_csv_cached(path("e.csv"));
  // Rewrite the CSV with a different size; the cache must be rebuilt.
  write_synthetic_csv(path("e.csv"), {60, 10, false}, 2);
  CsvReadStats stats;
  const DataFrame df = read_csv_cached(path("e.csv"),
                                       LoaderKind::kChunked, &stats);
  EXPECT_EQ(df.rows, 60u);
  EXPECT_GT(stats.chunks, 0u);  // re-parsed
}

TEST_F(BinaryCacheTest, CorruptCacheRejected) {
  write_file("bad.bin", "CFR1 garbage");
  EXPECT_THROW(load_frame(path("bad.bin")), IoError);
  write_file("worse.bin", "XXXX");
  EXPECT_THROW(load_frame(path("worse.bin")), IoError);
  EXPECT_FALSE(is_cached_frame(path("missing.bin")));
}

TEST_F(BinaryCacheTest, CacheLoadIsFasterThanParsing) {
  write_synthetic_csv(path("f.csv"), {200, 2000, false}, 5);
  CsvReadStats parse_stats;
  (void)read_csv_cached(path("f.csv"), LoaderKind::kChunked, &parse_stats);
  CsvReadStats hit_stats;
  (void)read_csv_cached(path("f.csv"), LoaderKind::kChunked, &hit_stats);
  EXPECT_LT(hit_stats.seconds, parse_stats.seconds);
}

// ---------------------------------------------------------------------------
// Synthetic data
// ---------------------------------------------------------------------------

TEST_F(SyntheticTest, CsvGeometryMatches) {
  const std::size_t bytes =
      write_synthetic_csv(path("g.csv"), {50, 20, true}, 1);
  EXPECT_EQ(std::filesystem::file_size(path("g.csv")), bytes);
  const DataFrame df = read_csv_chunked(path("g.csv"));
  EXPECT_EQ(df.rows, 50u);
  EXPECT_EQ(df.cols, 21u);  // label + 20 features
  for (std::size_t i = 0; i < df.rows; ++i) {
    const float label = df.at(i, 0);
    EXPECT_TRUE(label == 0.0f || label == 1.0f);
  }
}

TEST_F(SyntheticTest, CsvIsDeterministicInSeed) {
  write_synthetic_csv(path("s1.csv"), {10, 5, false}, 42);
  write_synthetic_csv(path("s2.csv"), {10, 5, false}, 42);
  std::ifstream a(path("s1.csv")), b(path("s2.csv"));
  std::string sa((std::istreambuf_iterator<char>(a)), {});
  std::string sb((std::istreambuf_iterator<char>(b)), {});
  EXPECT_EQ(sa, sb);
}

TEST(Synthetic, ClassificationBalancedAndShaped) {
  ClassificationSpec spec;
  spec.samples = 90;
  spec.features = 12;
  spec.classes = 3;
  spec.informative = 6;
  const nn::Dataset d = make_classification(spec);
  EXPECT_EQ(d.x.shape(), (Shape{90, 12}));
  EXPECT_EQ(d.y.shape(), (Shape{90, 3}));
  // Balanced classes: column sums of one-hot equal.
  for (std::size_t c = 0; c < 3; ++c) {
    float count = 0;
    for (std::size_t i = 0; i < 90; ++i) count += d.y.at(i, c);
    EXPECT_FLOAT_EQ(count, 30.0f);
  }
}

TEST(Synthetic, ClassificationSeparationControlsLearnability) {
  // Very separated data must be linearly separable to high accuracy by a
  // nearest-centroid rule; heavy noise must not be.
  auto centroid_accuracy = [](double sep, double noise) {
    ClassificationSpec spec;
    spec.samples = 400;
    spec.features = 10;
    spec.classes = 2;
    spec.informative = 10;
    spec.class_sep = sep;
    spec.noise = noise;
    spec.seed = 5;
    const nn::Dataset d = make_classification(spec);
    // Nearest-centroid on the training data.
    Tensor centers({2, 10});
    std::vector<float> counts(2, 0.0f);
    for (std::size_t i = 0; i < 400; ++i) {
      const std::size_t c = d.y.at(i, 1) > 0.5f ? 1 : 0;
      counts[c] += 1.0f;
      for (std::size_t j = 0; j < 10; ++j)
        centers.at(c, j) += d.x.at(i, j);
    }
    for (std::size_t c = 0; c < 2; ++c)
      for (std::size_t j = 0; j < 10; ++j) centers.at(c, j) /= counts[c];
    std::size_t hits = 0;
    for (std::size_t i = 0; i < 400; ++i) {
      double best = 1e30;
      std::size_t arg = 0;
      for (std::size_t c = 0; c < 2; ++c) {
        double dist = 0;
        for (std::size_t j = 0; j < 10; ++j) {
          const double diff = d.x.at(i, j) - centers.at(c, j);
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          arg = c;
        }
      }
      if (d.y.at(i, arg) > 0.5f) ++hits;
    }
    return static_cast<double>(hits) / 400.0;
  };
  EXPECT_GT(centroid_accuracy(3.0, 0.3), 0.97);
  EXPECT_LT(centroid_accuracy(0.05, 3.0), 0.75);
}

TEST(Synthetic, RegressionTargetsZeroCentered) {
  RegressionSpec spec;
  spec.samples = 300;
  spec.features = 8;
  spec.informative = 8;
  const nn::Dataset d = make_regression(spec);
  EXPECT_EQ(d.y.shape(), (Shape{300, 1}));
  EXPECT_GE(d.y.min(), -0.5f);
  EXPECT_LE(d.y.max(), 0.5f);
  EXPECT_NEAR(d.y.mean(), 0.0f, 0.15f);
}

TEST(Synthetic, RegressionIsLearnableStructure) {
  // R² of a constant predictor is 0; the data must carry signal that a
  // trained model can beat that (verified indirectly: targets correlate
  // with the informative features' projection, i.e. variance is not pure
  // noise). Train a tiny model as the check.
  RegressionSpec spec;
  spec.samples = 400;
  spec.features = 8;
  spec.informative = 8;
  spec.noise = 0.02;
  const nn::Dataset d = make_regression(spec);
  nn::Model m;
  m.add<nn::Dense>(16, nn::Act::kTanh);
  m.add<nn::Dense>(1, nn::Act::kNone);
  m.compile({8}, nn::make_optimizer("adam", 0.01), nn::make_loss("mse"), 3);
  nn::FitOptions opt;
  opt.epochs = 60;
  opt.batch_size = 50;
  opt.classification = false;
  EXPECT_GT(m.fit(d, opt).final_accuracy(), 0.6f);  // R²
}

TEST(Synthetic, AutoencoderDataLowRankStructure) {
  const nn::Dataset d = make_autoencoder_data(100, 32, 4, 9);
  EXPECT_EQ(d.x.shape(), (Shape{100, 32}));
  // Target equals input.
  for (std::size_t i = 0; i < d.x.numel(); ++i)
    ASSERT_FLOAT_EQ(d.x[i], d.y[i]);
  // Sigmoid output range.
  EXPECT_GE(d.x.min(), 0.0f);
  EXPECT_LE(d.x.max(), 1.0f);
}

TEST(Synthetic, InvalidSpecsThrow) {
  ClassificationSpec bad;
  bad.classes = 1;
  EXPECT_THROW(make_classification(bad), InvalidArgument);
  ClassificationSpec bad2;
  bad2.informative = 999;
  bad2.features = 4;
  EXPECT_THROW(make_classification(bad2), InvalidArgument);
  EXPECT_THROW(make_autoencoder_data(10, 4, 8, 1), InvalidArgument);
}

}  // namespace
}  // namespace candle::io
