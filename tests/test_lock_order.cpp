// Tests for the runtime lock-hierarchy validator (common/lock_order.* +
// the AnnotatedMutex hooks in common/thread_annotations.h): ordered
// acquisition passes silently; an inversion produces a diagnostic naming
// both mutexes and both levels; equal levels are rejected (the order is
// *strictly* descending); try_lock joins the stack without an order check;
// the default handler aborts; and the two real producer/consumer
// subsystems (hvd::BucketScheduler, nn::BatchPipeline) run clean under the
// validator — which is the TSan-preset cross-check of the static model in
// tools/analyze.
#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.h"
#include "common/lock_order.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "hvd/bucket_scheduler.h"
#include "hvd/context.h"
#include "hvd/fusion.h"
#include "nn/batch_pipeline.h"
#include "nn/dataset.h"
#include "tensor/tensor.h"

#if defined(__SANITIZE_THREAD__)
#define CANDLE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CANDLE_TEST_TSAN 1
#endif
#endif

namespace candle {
namespace {

/// Enables validation for the test scope, captures diagnostics instead of
/// aborting, and restores the ambient state on exit. Capture is mutex-
/// guarded: a violation may be reported from a comm or producer thread.
class ValidatorScope {
 public:
  ValidatorScope() : saved_(lock_order::enabled()) {
    lock_order::set_enabled(true);
    lock_order::set_violation_handler([this](const std::string& diag) {
      std::lock_guard<std::mutex> lock(mu_);
      diagnostics_.push_back(diag);
    });
  }
  ~ValidatorScope() {
    lock_order::set_violation_handler(nullptr);
    lock_order::set_enabled(saved_);
  }
  ValidatorScope(const ValidatorScope&) = delete;
  ValidatorScope& operator=(const ValidatorScope&) = delete;

  std::vector<std::string> diagnostics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return diagnostics_;
  }

 private:
  bool saved_;
  mutable std::mutex mu_;
  std::vector<std::string> diagnostics_;
};

TEST(LockOrderValidator, OrderedAcquisitionPassesAndTracksDepth) {
  ValidatorScope scope;
  AnnotatedMutex high{CANDLE_LOCK_LEVEL(90), "test::high"};
  AnnotatedMutex low{CANDLE_LOCK_LEVEL(5), "test::low"};
  EXPECT_EQ(0u, lock_order::held_count());
  {
    MutexLock outer(high);
    EXPECT_EQ(1u, lock_order::held_count());
    MutexLock inner(low);  // 90 -> 5: strictly descending
    EXPECT_EQ(2u, lock_order::held_count());
  }
  EXPECT_EQ(0u, lock_order::held_count());
  EXPECT_TRUE(scope.diagnostics().empty());
}

TEST(LockOrderValidator, InversionNamesBothMutexesAndLevels) {
  ValidatorScope scope;
  AnnotatedMutex low{CANDLE_LOCK_LEVEL(5), "test::low"};
  AnnotatedMutex high{CANDLE_LOCK_LEVEL(90), "test::high"};
  const std::size_t before = lock_order::violation_count();
  {
    MutexLock outer(low);
    MutexLock inner(high);  // 5 -> 90: inversion
  }
  EXPECT_EQ(before + 1, lock_order::violation_count());
  const auto diags = scope.diagnostics();
  ASSERT_EQ(1u, diags.size());
  // The diagnostic must name both mutexes and both levels — that is what
  // makes a one-shot report actionable without a debugger.
  EXPECT_NE(std::string::npos, diags[0].find("test::high"));
  EXPECT_NE(std::string::npos, diags[0].find("test::low"));
  EXPECT_NE(std::string::npos, diags[0].find("level 90"));
  EXPECT_NE(std::string::npos, diags[0].find("level 5"));
  EXPECT_NE(std::string::npos, diags[0].find("strictly descending"));
  // The stack stays balanced after a reported violation.
  EXPECT_EQ(0u, lock_order::held_count());
}

TEST(LockOrderValidator, EqualLevelsAreRejected) {
  // Two locks on the same level may not nest in either order — "descending"
  // is strict, so sibling locks can never deadlock against each other.
  ValidatorScope scope;
  AnnotatedMutex a{CANDLE_LOCK_LEVEL(42), "test::a"};
  AnnotatedMutex b{CANDLE_LOCK_LEVEL(42), "test::b"};
  {
    MutexLock outer(a);
    MutexLock inner(b);
  }
  ASSERT_EQ(1u, scope.diagnostics().size());
  EXPECT_NE(std::string::npos, scope.diagnostics()[0].find("level 42"));
}

TEST(LockOrderValidator, TryLockJoinsStackWithoutOrderCheck) {
  // A successful try_lock cannot deadlock, so it joins the held stack
  // without validation — but later blocking acquisitions are checked
  // against it.
  ValidatorScope scope;
  AnnotatedMutex low{CANDLE_LOCK_LEVEL(5), "test::low"};
  AnnotatedMutex high{CANDLE_LOCK_LEVEL(90), "test::high"};
  {
    MutexLock outer(low);
    ASSERT_TRUE(high.try_lock());  // ascending, but non-blocking: allowed
    EXPECT_EQ(2u, lock_order::held_count());
    high.unlock();
  }
  EXPECT_TRUE(scope.diagnostics().empty());
  EXPECT_EQ(0u, lock_order::held_count());
}

TEST(LockOrderValidator, DisabledGateTracksNothing) {
  ValidatorScope scope;
  lock_order::set_enabled(false);
  AnnotatedMutex low{CANDLE_LOCK_LEVEL(5), "test::low"};
  AnnotatedMutex high{CANDLE_LOCK_LEVEL(90), "test::high"};
  {
    MutexLock outer(low);
    MutexLock inner(high);  // inversion, but the validator is off
    EXPECT_EQ(0u, lock_order::held_count());
  }
  EXPECT_TRUE(scope.diagnostics().empty());
}

#if defined(GTEST_HAS_DEATH_TEST) && !defined(CANDLE_TEST_TSAN)
void DieOnInversion() {
  lock_order::set_enabled(true);
  AnnotatedMutex low{CANDLE_LOCK_LEVEL(5), "death::low"};
  AnnotatedMutex high{CANDLE_LOCK_LEVEL(90), "death::high"};
  MutexLock outer(low);
  MutexLock inner(high);
}

TEST(LockOrderValidatorDeathTest, DefaultHandlerPrintsAndAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(DieOnInversion(), "lock levels must be strictly descending");
}
#endif

// ---------------------------------------------------------------------------
// Integration: the two producer/consumer subsystems with background
// threads run clean under the validator. Under the tsan preset this is the
// dynamic cross-check of the static hierarchy: TSan proves race-freedom,
// the validator proves the CANDLE_LOCK_LEVEL order on the same execution.
// ---------------------------------------------------------------------------

nn::Dataset make_toy_data(std::size_t n, std::size_t features,
                          std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({n, features});
  for (float& v : x.values()) v = static_cast<float>(rng.normal());
  std::vector<std::size_t> labels(n);
  for (auto& l : labels) l = rng.uniform_index(classes);
  return nn::Dataset{std::move(x), nn::one_hot(labels, classes)};
}

TEST(LockOrderIntegration, SchedulerAndPipelineRunCleanUnderValidator) {
  ValidatorScope scope;
  const std::size_t before = lock_order::violation_count();

  // Overlapped gradient exchange: rank threads, per-rank comm threads, the
  // rendezvous lock, timelines, and the pool — the deepest real nesting.
  comm::World::run(2, [&](comm::Communicator& c) {
    hvd::Context ctx(c);
    hvd::FusionOptions fusion;
    fusion.threshold_bytes = 16 * sizeof(float);
    hvd::FusionBuffer buffer;
    hvd::BucketScheduler scheduler(ctx, fusion, buffer);

    std::vector<Tensor> grads;
    for (int t = 0; t < 4; ++t) grads.emplace_back(Shape{16});
    std::vector<Tensor*> ptrs;
    for (auto& g : grads) ptrs.push_back(&g);
    scheduler.bind(ptrs);
    for (int step = 0; step < 3; ++step) {
      for (auto& g : grads)
        for (float& v : g.values()) v = static_cast<float>(c.rank() + step);
      for (std::size_t t = grads.size(); t-- > 0;)
        scheduler.mark_ready(t, 1);
      (void)scheduler.drain();
    }
  });

  // Double-buffered input staging: producer thread vs consuming loop.
  const nn::Dataset data = make_toy_data(24, 6, 3, 77);
  nn::PipelineOptions options;
  options.batch_size = 5;
  nn::BatchPipeline pipeline(data, options);
  for (int epoch = 0; epoch < 3; ++epoch) {
    pipeline.start_epoch({});
    while (pipeline.acquire() != nullptr) {
    }
  }

  EXPECT_EQ(before, lock_order::violation_count());
  EXPECT_TRUE(scope.diagnostics().empty());
}

}  // namespace
}  // namespace candle
