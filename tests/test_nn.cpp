// Tests for src/nn: layers, losses, metrics, optimizers, model training.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "io/synthetic.h"
#include "nn/dataset.h"
#include "nn/initializers.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace candle::nn {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double stddev = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.values()) v = static_cast<float>(rng.normal(0, stddev));
  return t;
}

// ---------------------------------------------------------------------------
// Initializers
// ---------------------------------------------------------------------------

TEST(Initializers, GlorotUniformWithinLimit) {
  Rng rng(1);
  Tensor w({100, 50});
  glorot_uniform(w, 100, 50, rng);
  const double limit = std::sqrt(6.0 / 150.0);
  EXPECT_LE(w.max(), limit);
  EXPECT_GE(w.min(), -limit);
  EXPECT_NEAR(w.mean(), 0.0, 0.02);
}

TEST(Initializers, HeUniformWithinLimit) {
  Rng rng(2);
  Tensor w({64, 64});
  he_uniform(w, 64, rng);
  const double limit = std::sqrt(6.0 / 64.0);
  EXPECT_LE(w.max(), limit);
  EXPECT_GE(w.min(), -limit);
}

TEST(Initializers, ZerosInit) {
  Tensor w({4}, 9.0f);
  zeros_init(w);
  EXPECT_FLOAT_EQ(w.sum(), 0.0f);
}

// ---------------------------------------------------------------------------
// Activation helpers
// ---------------------------------------------------------------------------

TEST(Activations, ParseNames) {
  EXPECT_EQ(act_from_string("relu"), Act::kRelu);
  EXPECT_EQ(act_from_string("softmax"), Act::kSoftmax);
  EXPECT_EQ(act_from_string("linear"), Act::kNone);
  EXPECT_THROW(act_from_string("gelu"), InvalidArgument);
}

TEST(Activations, SoftmaxBackwardMatchesFiniteDifference) {
  Rng rng(3);
  const Tensor x = random_tensor({2, 5}, rng);
  const Tensor y = apply_activation(Act::kSoftmax, x);
  // Loss = sum(y * c) for a fixed random c: dL/dy = c.
  const Tensor c = random_tensor({2, 5}, rng);
  const Tensor dx = activation_backward(Act::kSoftmax, c, y);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const float lp = mul(apply_activation(Act::kSoftmax, xp), c).sum();
    const float lm = mul(apply_activation(Act::kSoftmax, xm), c).sum();
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 2e-3f) << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Layers: shapes and gradients
// ---------------------------------------------------------------------------

TEST(DenseLayer, BuildShapesAndParamCount) {
  Rng rng(1);
  Dense d(8, Act::kRelu);
  const Shape out = d.build({20}, rng);
  EXPECT_EQ(out, (Shape{8}));
  EXPECT_EQ(d.param_count(), 20u * 8 + 8);
}

TEST(DenseLayer, ForwardMatchesManualComputation) {
  Rng rng(1);
  Dense d(2, Act::kNone);
  d.build({3}, rng);
  const Tensor x({1, 3}, {1, 2, 3});
  const Tensor y = d.forward(x, false);
  const Tensor& w = d.weights();
  float expect0 = 0;
  for (std::size_t j = 0; j < 3; ++j) expect0 += x[j] * w.at(j, 0);
  EXPECT_NEAR(y.at(0, 0), expect0, 1e-5f);
}

TEST(DenseLayer, GradientsMatchFiniteDifference) {
  Rng rng(7);
  Dense d(4, Act::kTanh);
  d.build({5}, rng);
  const Tensor x = random_tensor({3, 5}, rng, 0.5);
  const Tensor c = random_tensor({3, 4}, rng);  // loss = sum(y ⊙ c)

  const Tensor y = d.forward(x, true);
  const Tensor dx = d.backward(c);
  const Tensor dw = *d.grads()[0];

  Tensor* w = d.params()[0];
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, w->numel() / 2, w->numel() - 1}) {
    const float orig = (*w)[i];
    (*w)[i] = orig + eps;
    const float lp = mul(d.forward(x, true), c).sum();
    (*w)[i] = orig - eps;
    const float lm = mul(d.forward(x, true), c).sum();
    (*w)[i] = orig;
    EXPECT_NEAR(dw[i], (lp - lm) / (2 * eps), 5e-3f) << "dW[" << i << "]";
  }
  for (std::size_t i : {std::size_t{0}, x.numel() - 1}) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const float lp = mul(d.forward(xp, true), c).sum();
    const float lm = mul(d.forward(xm, true), c).sum();
    d.forward(x, true);  // restore cached input
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 5e-3f) << "dX[" << i << "]";
  }
}

TEST(Conv1DLayer, BuildComputesOutputShape) {
  Rng rng(1);
  Conv1D conv(16, 9, 1, Act::kRelu);
  const Shape out = conv.build({100, 1}, rng);
  EXPECT_EQ(out, (Shape{92, 16}));
  EXPECT_EQ(conv.param_count(), 9u * 1 * 16 + 16);
}

TEST(LocallyConnectedLayer, ShapesAndParamCount) {
  Rng rng(20);
  LocallyConnected1D lc(4, 3, 2, Act::kNone);
  const Shape out = lc.build({9, 2}, rng);
  EXPECT_EQ(out, (Shape{4, 4}));  // (9-3)/2+1 = 4 positions, 4 filters
  // Untied weights: per-position kernels + per-position bias.
  EXPECT_EQ(lc.param_count(), 4u * 3 * 2 * 4 + 4u * 4);
}

TEST(LocallyConnectedLayer, UntiedWeightsDifferAcrossPositions) {
  // A constant input produces different outputs at different positions
  // (conv would produce identical ones).
  Rng rng(21);
  LocallyConnected1D lc(1, 2, 1, Act::kNone);
  lc.build({4, 1}, rng);
  const Tensor x({1, 4, 1}, 1.0f);
  const Tensor y = lc.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 3, 1}));
  EXPECT_NE(y[0], y[1]);

  Conv1D conv(1, 2, 1, Act::kNone);
  conv.build({4, 1}, rng);
  const Tensor yc = conv.forward(x, false);
  EXPECT_FLOAT_EQ(yc[0], yc[1]);  // tied conv weights: identical outputs
}

TEST(LocallyConnectedLayer, GradientsMatchFiniteDifference) {
  Rng rng(22);
  LocallyConnected1D lc(3, 3, 2, Act::kTanh);
  lc.build({7, 2}, rng);
  const Tensor x = random_tensor({2, 7, 2}, rng, 0.5);
  const Tensor y0 = lc.forward(x, true);
  const Tensor c = random_tensor(y0.shape(), rng);
  (void)lc.forward(x, true);
  const Tensor dx = lc.backward(c);
  const Tensor dw = *lc.grads()[0];
  const Tensor db = *lc.grads()[1];

  Tensor* w = lc.params()[0];
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, w->numel() / 2, w->numel() - 1}) {
    const float orig = (*w)[i];
    (*w)[i] = orig + eps;
    const float lp = mul(lc.forward(x, true), c).sum();
    (*w)[i] = orig - eps;
    const float lm = mul(lc.forward(x, true), c).sum();
    (*w)[i] = orig;
    EXPECT_NEAR(dw[i], (lp - lm) / (2 * eps), 1e-2f) << "dW[" << i << "]";
  }
  for (std::size_t i : {std::size_t{0}, x.numel() - 1}) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const float lp = mul(lc.forward(xp, true), c).sum();
    const float lm = mul(lc.forward(xm, true), c).sum();
    lc.forward(x, true);
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 1e-2f) << "dX[" << i << "]";
  }
  Tensor* bias = lc.params()[1];
  for (std::size_t i : {std::size_t{0}, bias->numel() - 1}) {
    const float orig = (*bias)[i];
    (*bias)[i] = orig + eps;
    const float lp = mul(lc.forward(x, true), c).sum();
    (*bias)[i] = orig - eps;
    const float lm = mul(lc.forward(x, true), c).sum();
    (*bias)[i] = orig;
    EXPECT_NEAR(db[i], (lp - lm) / (2 * eps), 1e-2f) << "dB[" << i << "]";
  }
}

TEST(MaxPoolLayer, DefaultStrideEqualsWindow) {
  Rng rng(1);
  MaxPool1D pool(4);
  EXPECT_EQ(pool.build({100, 8}, rng), (Shape{25, 8}));
}

TEST(AvgPoolLayer, ForwardAveragesWindows) {
  Rng rng(30);
  AvgPool1D pool(2);
  EXPECT_EQ(pool.build({6, 1}, rng), (Shape{3, 1}));
  Tensor x({1, 6, 1}, {1, 3, 5, 7, 9, 11});
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
  EXPECT_FLOAT_EQ(y[2], 10.0f);
}

TEST(AvgPoolLayer, BackwardSpreadsGradientEvenly) {
  Rng rng(31);
  AvgPool1D pool(3);
  pool.build({3, 2}, rng);
  Tensor x({1, 3, 2}, {1, 2, 3, 4, 5, 6});
  (void)pool.forward(x, false);
  const Tensor dy({1, 1, 2}, {3.0f, 6.0f});
  const Tensor dx = pool.backward(dy);
  ASSERT_EQ(dx.shape(), x.shape());
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_FLOAT_EQ(dx[t * 2 + 0], 1.0f);
    EXPECT_FLOAT_EQ(dx[t * 2 + 1], 2.0f);
  }
}

TEST(AvgPoolLayer, GradientMatchesFiniteDifference) {
  Rng rng(32);
  AvgPool1D pool(2, 2);
  pool.build({8, 3}, rng);
  const Tensor x = random_tensor({2, 8, 3}, rng);
  const Tensor y = pool.forward(x, false);
  const Tensor c = random_tensor(y.shape(), rng);
  (void)pool.forward(x, false);
  const Tensor dx = pool.backward(c);
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, x.numel() / 2, x.numel() - 1}) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const float lp = mul(pool.forward(xp, false), c).sum();
    const float lm = mul(pool.forward(xm, false), c).sum();
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 2e-3f) << i;
  }
}

TEST(FlattenLayer, RoundTrip) {
  Rng rng(1);
  Flatten f;
  EXPECT_EQ(f.build({7, 3}, rng), (Shape{21}));
  const Tensor x({2, 7, 3}, 1.0f);
  const Tensor y = f.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 21}));
  const Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(ExpandDimsLayer, AddsChannelAxis) {
  Rng rng(1);
  ExpandDims e;
  EXPECT_EQ(e.build({60}, rng), (Shape{60, 1}));
  const Tensor x({2, 60}, 0.5f);
  EXPECT_EQ(e.forward(x, false).shape(), (Shape{2, 60, 1}));
}

TEST(DropoutLayer, InferenceIsIdentity) {
  Rng rng(1);
  Dropout drop(0.5);
  drop.build({10}, rng);
  const Tensor x({4, 10}, 1.0f);
  const Tensor y = drop.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 1.0f);
}

TEST(DropoutLayer, TrainingZeroesAndRescales) {
  Rng rng(1);
  Dropout drop(0.5);
  drop.build({1000}, rng);
  const Tensor x({1, 1000}, 1.0f);
  const Tensor y = drop.forward(x, /*training=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // kept values scaled by 1/(1-rate)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros), 500.0, 80.0);
  // Expected value preserved (inverted dropout).
  EXPECT_NEAR(y.mean(), 1.0f, 0.2f);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Rng rng(1);
  Dropout drop(0.3);
  drop.build({100}, rng);
  const Tensor x({1, 100}, 1.0f);
  const Tensor y = drop.forward(x, true);
  const Tensor dy({1, 100}, 1.0f);
  const Tensor dx = drop.backward(dy);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(dx[i], y[i]);
}

TEST(DropoutLayer, RejectsBadRate) {
  EXPECT_THROW(Dropout(-0.1), InvalidArgument);
  EXPECT_THROW(Dropout(1.0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// BatchNorm
// ---------------------------------------------------------------------------

TEST(BatchNormLayer, TrainingForwardStandardizesBatch) {
  Rng rng(10);
  BatchNorm bn;
  bn.build({3}, rng);
  Tensor x = random_tensor({64, 3}, rng, 4.0);
  x += Tensor({64, 3}, 7.0f);  // shifted, wide distribution
  const Tensor y = bn.forward(x, /*training=*/true);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0, var = 0;
    for (std::size_t i = 0; i < 64; ++i) mean += y.at(i, j);
    mean /= 64;
    for (std::size_t i = 0; i < 64; ++i) {
      const double d = y.at(i, j) - mean;
      var += d * d;
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 0.05);  // epsilon slightly shrinks variance
  }
}

TEST(BatchNormLayer, InferenceUsesRunningStatistics) {
  Rng rng(11);
  BatchNorm bn(/*momentum=*/0.0);  // running stats = last batch stats
  bn.build({2}, rng);
  Tensor x = random_tensor({128, 2}, rng, 2.0);
  (void)bn.forward(x, true);
  // At inference, the same batch should normalize to ~N(0,1) using the
  // stored running stats.
  const Tensor y = bn.forward(x, false);
  double mean = 0;
  for (std::size_t i = 0; i < 128; ++i) mean += y.at(i, 0);
  EXPECT_NEAR(mean / 128, 0.0, 0.05);
}

TEST(BatchNormLayer, GammaBetaAreTrainable) {
  Rng rng(12);
  BatchNorm bn;
  bn.build({4}, rng);
  EXPECT_EQ(bn.params().size(), 2u);
  EXPECT_EQ(bn.param_count(), 8u);
}

TEST(BatchNormLayer, BackwardMatchesFiniteDifferenceForGamma) {
  Rng rng(13);
  BatchNorm bn;
  bn.build({3}, rng);
  const Tensor x = random_tensor({16, 3}, rng);
  const Tensor c = random_tensor({16, 3}, rng);  // loss = sum(y ⊙ c)
  (void)bn.forward(x, true);
  (void)bn.backward(c);
  const Tensor dgamma = *bn.grads()[0];
  Tensor* gamma = bn.params()[0];
  const float eps = 1e-3f;
  for (std::size_t j = 0; j < 3; ++j) {
    const float orig = (*gamma)[j];
    (*gamma)[j] = orig + eps;
    const float lp = mul(bn.forward(x, true), c).sum();
    (*gamma)[j] = orig - eps;
    const float lm = mul(bn.forward(x, true), c).sum();
    (*gamma)[j] = orig;
    EXPECT_NEAR(dgamma[j], (lp - lm) / (2 * eps), 2e-2f) << j;
  }
}

TEST(BatchNormLayer, BackwardMatchesFiniteDifferenceForInput) {
  Rng rng(14);
  BatchNorm bn;
  bn.build({2}, rng);
  const Tensor x = random_tensor({8, 2}, rng);
  const Tensor c = random_tensor({8, 2}, rng);
  (void)bn.forward(x, true);
  const Tensor dx = bn.backward(c);
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, x.numel() - 1}) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const float lp = mul(bn.forward(xp, true), c).sum();
    const float lm = mul(bn.forward(xm, true), c).sum();
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 2e-2f) << i;
  }
}

TEST(BatchNormLayer, ImprovesDeepSigmoidTraining) {
  // A sanity check of the practical effect: with badly scaled inputs, a
  // batch-normalized MLP reaches a lower loss than the same MLP without.
  io::ClassificationSpec spec;
  spec.samples = 200;
  spec.features = 10;
  spec.classes = 2;
  spec.informative = 10;
  spec.class_sep = 2.0;
  spec.noise = 0.8;
  spec.seed = 15;
  Dataset d = io::make_classification(spec);
  for (float& v : d.x.values()) v = v * 30.0f + 100.0f;  // wreck the scale

  auto train = [&](bool with_bn) {
    Model m;
    if (with_bn) m.add<BatchNorm>();
    m.add<Dense>(16, Act::kSigmoid);
    m.add<Dense>(2, Act::kSoftmax);
    m.compile({10}, make_optimizer("sgd", 0.05),
              make_loss("categorical_crossentropy"), 16);
    FitOptions opt;
    opt.epochs = 25;
    opt.batch_size = 50;
    return m.fit(d, opt).final_loss();
  };
  EXPECT_LT(train(true), train(false));
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

TEST(Losses, CceValueForPerfectPrediction) {
  const Tensor pred({1, 2}, {1.0f, 0.0f});
  const Tensor target({1, 2}, {1.0f, 0.0f});
  CategoricalCrossentropy cce;
  EXPECT_NEAR(cce.value(pred, target), 0.0f, 1e-5f);
}

TEST(Losses, CceValueKnown) {
  const Tensor pred({1, 2}, {0.5f, 0.5f});
  const Tensor target({1, 2}, {1.0f, 0.0f});
  CategoricalCrossentropy cce;
  EXPECT_NEAR(cce.value(pred, target), std::log(2.0f), 1e-5f);
}

TEST(Losses, CceGradientComposedWithSoftmaxIsPredMinusTarget) {
  // d(CCE ∘ softmax)/dlogits = (p - t) / batch — the standard identity.
  Rng rng(4);
  const Tensor logits = random_tensor({3, 4}, rng);
  const Tensor p = softmax_rows(logits);
  Tensor t({3, 4});
  t.at(0, 1) = 1;
  t.at(1, 0) = 1;
  t.at(2, 3) = 1;
  CategoricalCrossentropy cce;
  const Tensor dpred = cce.gradient(p, t);
  const Tensor dlogits = activation_backward(Act::kSoftmax, dpred, p);
  for (std::size_t i = 0; i < dlogits.numel(); ++i)
    EXPECT_NEAR(dlogits[i], (p[i] - t[i]) / 3.0f, 1e-4f);
}

TEST(Losses, MseValueAndGradient) {
  const Tensor pred({2, 1}, {1.0f, 3.0f});
  const Tensor target({2, 1}, {0.0f, 1.0f});
  MeanSquaredError mse;
  EXPECT_NEAR(mse.value(pred, target), (1.0f + 4.0f) / 2.0f, 1e-6f);
  const Tensor g = mse.gradient(pred, target);
  EXPECT_NEAR(g[0], 2.0f * 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(g[1], 2.0f * 2.0f / 2.0f, 1e-6f);
}

TEST(Losses, MaeValueAndGradientSigns) {
  const Tensor pred({1, 3}, {1.0f, -2.0f, 0.0f});
  const Tensor target({1, 3}, {0.0f, 0.0f, 0.0f});
  MeanAbsoluteError mae;
  EXPECT_NEAR(mae.value(pred, target), 1.0f, 1e-6f);
  const Tensor g = mae.gradient(pred, target);
  EXPECT_GT(g[0], 0.0f);
  EXPECT_LT(g[1], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(Losses, FactoryNames) {
  EXPECT_EQ(make_loss("mse")->name(), "mse");
  EXPECT_EQ(make_loss("categorical_crossentropy")->name(),
            "categorical_crossentropy");
  EXPECT_THROW(make_loss("hinge"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, Accuracy) {
  const Tensor pred({2, 2}, {0.9f, 0.1f, 0.4f, 0.6f});
  const Tensor target({2, 2}, {1, 0, 1, 0});
  EXPECT_FLOAT_EQ(accuracy(pred, target), 0.5f);
}

TEST(Metrics, R2PerfectAndMean) {
  const Tensor t({3, 1}, {1, 2, 3});
  EXPECT_FLOAT_EQ(r2_score(t, t), 1.0f);
  const Tensor mean_pred({3, 1}, {2, 2, 2});
  EXPECT_NEAR(r2_score(mean_pred, t), 0.0f, 1e-6f);
}

TEST(Metrics, Mae) {
  const Tensor p({2, 1}, {1.0f, 2.0f});
  const Tensor t({2, 1}, {0.0f, 4.0f});
  EXPECT_FLOAT_EQ(mean_absolute_error(p, t), 1.5f);
}

// ---------------------------------------------------------------------------
// Optimizers
// ---------------------------------------------------------------------------

TEST(Optimizers, SgdStep) {
  Tensor w = Tensor::from({1.0f});
  Tensor g = Tensor::from({0.5f});
  Sgd sgd(0.1);
  sgd.apply({&w}, {&g});
  EXPECT_NEAR(w[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Optimizers, SgdMomentumAccumulates) {
  Tensor w = Tensor::from({0.0f});
  Tensor g = Tensor::from({1.0f});
  Sgd sgd(0.1, 0.9);
  sgd.apply({&w}, {&g});
  EXPECT_NEAR(w[0], -0.1f, 1e-6f);
  sgd.apply({&w}, {&g});
  // v2 = 0.9*(-0.1) - 0.1 = -0.19; w = -0.1 - 0.19
  EXPECT_NEAR(w[0], -0.29f, 1e-6f);
}

TEST(Optimizers, AdamFirstStepSizeIsLr) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  Tensor w = Tensor::from({0.0f});
  Tensor g = Tensor::from({3.0f});
  Adam adam(0.001);
  adam.apply({&w}, {&g});
  EXPECT_NEAR(w[0], -0.001f, 1e-5f);
}

TEST(Optimizers, RmspropNormalizesStepScale) {
  // Gradients of very different magnitudes produce similar step sizes.
  Tensor w1 = Tensor::from({0.0f}), g1 = Tensor::from({100.0f});
  Tensor w2 = Tensor::from({0.0f}), g2 = Tensor::from({0.01f});
  RmsProp o1(0.01), o2(0.01);
  for (int i = 0; i < 20; ++i) {
    o1.apply({&w1}, {&g1});
    o2.apply({&w2}, {&g2});
  }
  EXPECT_NEAR(w1[0] / w2[0], 1.0f, 0.05f);
}

TEST(Optimizers, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 with each optimizer.
  for (const char* name : {"sgd", "adam", "rmsprop"}) {
    auto opt = make_optimizer(name, name == std::string("sgd") ? 0.1 : 0.05);
    Tensor w = Tensor::from({0.0f});
    for (int i = 0; i < 500; ++i) {
      Tensor g = Tensor::from({2.0f * (w[0] - 3.0f)});
      opt->apply({&w}, {&g});
    }
    EXPECT_NEAR(w[0], 3.0f, 0.05f) << name;
  }
}

TEST(Optimizers, NesterovLooksAhead) {
  // First step: classic gives -lr*g; Nesterov gives -(1+mu)*lr*g.
  Tensor w1 = Tensor::from({0.0f}), g = Tensor::from({1.0f});
  Sgd classic(0.1, 0.9);
  classic.apply({&w1}, {&g});
  Tensor w2 = Tensor::from({0.0f});
  Sgd nesterov(0.1, 0.9, true);
  nesterov.apply({&w2}, {&g});
  EXPECT_NEAR(w1[0], -0.1f, 1e-6f);
  EXPECT_NEAR(w2[0], -0.19f, 1e-6f);  // mu*v - lr*g with v = -0.1
}

TEST(Optimizers, NesterovRequiresMomentum) {
  EXPECT_THROW(Sgd(0.1, 0.0, true), InvalidArgument);
}

TEST(Optimizers, ClippingScalesLargeGradients) {
  Tensor w = Tensor::from({0.0f, 0.0f});
  Tensor g = Tensor::from({3.0f, 4.0f});  // norm 5
  ClippedOptimizer opt(std::make_unique<Sgd>(1.0), /*max_norm=*/1.0);
  opt.apply({&w}, {&g});
  // Clipped gradient = (0.6, 0.8); step = -1.0 * that.
  EXPECT_NEAR(w[0], -0.6f, 1e-5f);
  EXPECT_NEAR(w[1], -0.8f, 1e-5f);
  EXPECT_EQ(opt.clip_events(), 1u);
}

TEST(Optimizers, ClippingLeavesSmallGradientsAlone) {
  Tensor w = Tensor::from({0.0f});
  Tensor g = Tensor::from({0.5f});
  ClippedOptimizer opt(std::make_unique<Sgd>(0.1), 10.0);
  opt.apply({&w}, {&g});
  EXPECT_NEAR(w[0], -0.05f, 1e-6f);
  EXPECT_EQ(opt.clip_events(), 0u);
}

TEST(Optimizers, LearningRateScalingHook) {
  auto opt = make_optimizer("sgd", 0.001);
  opt->set_learning_rate(0.001 * 48);
  EXPECT_DOUBLE_EQ(opt->learning_rate(), 0.048);
}

TEST(Optimizers, MismatchedListsThrow) {
  Tensor w({2});
  Tensor g({3});
  Sgd sgd(0.1);
  EXPECT_THROW(sgd.apply({&w}, {&g}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Dataset utilities
// ---------------------------------------------------------------------------

TEST(DatasetUtils, TakeRows) {
  const Tensor t({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  const Tensor s = take_rows(t, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at(0, 0), 2.0f);
  EXPECT_THROW((void)take_rows(t, 3, 2), InvalidArgument);
}

TEST(DatasetUtils, GatherRows) {
  const Tensor t({3, 2}, {0, 1, 10, 11, 20, 21});
  const Tensor s = gather_rows(t, {2, 0});
  EXPECT_FLOAT_EQ(s.at(0, 1), 21.0f);
  EXPECT_FLOAT_EQ(s.at(1, 0), 0.0f);
}

TEST(DatasetUtils, OneHot) {
  const Tensor y = one_hot({1, 0, 2}, 3);
  EXPECT_EQ(y.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_THROW((void)one_hot({5}, 3), InvalidArgument);
}

TEST(DatasetUtils, ValidationSplitTakesTail) {
  Dataset d{Tensor({10, 1}), Tensor({10, 1})};
  for (std::size_t i = 0; i < 10; ++i) d.x.at(i, 0) = static_cast<float>(i);
  const auto [train, val] = validation_split(d, 0.2);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(val.size(), 2u);
  EXPECT_FLOAT_EQ(val.x.at(0, 0), 8.0f);
}

TEST(DatasetUtils, StandardizeColumns) {
  Tensor x({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  standardize_columns(x);
  for (std::size_t j = 0; j < 2; ++j) {
    float mean = 0, var = 0;
    for (std::size_t i = 0; i < 4; ++i) mean += x.at(i, j);
    mean /= 4;
    for (std::size_t i = 0; i < 4; ++i)
      var += (x.at(i, j) - mean) * (x.at(i, j) - mean);
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var / 4, 1.0f, 1e-4f);
  }
}

TEST(DatasetUtils, MinMaxScale) {
  Tensor x({3, 2}, {0, 5, 5, 5, 10, 5});
  minmax_scale_columns(x);
  EXPECT_FLOAT_EQ(x.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.at(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(x.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), 0.0f);  // constant column -> 0
}

// ---------------------------------------------------------------------------
// Model end-to-end
// ---------------------------------------------------------------------------

TEST(Model, CompileRequiresLayers) {
  Model m;
  EXPECT_THROW(
      m.compile({4}, make_optimizer("sgd", 0.1), make_loss("mse"), 1),
      InvalidArgument);
}

TEST(Model, PredictBeforeCompileThrows) {
  Model m;
  m.add<Dense>(2);
  EXPECT_THROW((void)m.predict(Tensor({1, 4})), InvalidArgument);
}

TEST(Model, AddAfterCompileThrows) {
  Model m;
  m.add<Dense>(2);
  m.compile({4}, make_optimizer("sgd", 0.1), make_loss("mse"), 1);
  EXPECT_THROW(m.add<Dense>(2), InvalidArgument);
}

TEST(Model, ParamCountSumsLayers) {
  Model m;
  m.add<Dense>(8, Act::kRelu);
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({10}, make_optimizer("sgd", 0.1),
            make_loss("categorical_crossentropy"), 1);
  EXPECT_EQ(m.param_count(), 10u * 8 + 8 + 8 * 2 + 2);
  EXPECT_EQ(m.parameters().size(), 4u);
  EXPECT_EQ(m.gradients().size(), 4u);
}

TEST(Model, LearnsXorLikeMlp) {
  // 2-bit parity with an MLP — requires a genuinely nonlinear fit.
  Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const Tensor y = one_hot({0, 1, 1, 0}, 2);
  Model m;
  m.add<Dense>(8, Act::kTanh);
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({2}, make_optimizer("adam", 0.05),
            make_loss("categorical_crossentropy"), 3);
  Dataset d{x, y};
  FitOptions opt;
  opt.epochs = 300;
  opt.batch_size = 4;
  opt.shuffle = false;
  const History h = m.fit(d, opt);
  EXPECT_EQ(h.epochs.size(), 300u);
  EXPECT_GE(h.final_accuracy(), 0.99f);
}

TEST(Model, LearnsLinearRegression) {
  Rng rng(6);
  const std::size_t n = 256;
  Tensor x({n, 3});
  Tensor y({n, 1});
  for (std::size_t i = 0; i < n; ++i) {
    float acc = 0.1f;
    for (std::size_t j = 0; j < 3; ++j) {
      x.at(i, j) = static_cast<float>(rng.normal());
      acc += x.at(i, j) * static_cast<float>(j + 1) * 0.5f;
    }
    y.at(i, 0) = acc;
  }
  Model m;
  m.add<Dense>(1, Act::kNone);
  m.compile({3}, make_optimizer("sgd", 0.05), make_loss("mse"), 1);
  FitOptions opt;
  opt.epochs = 60;
  opt.batch_size = 32;
  opt.classification = false;
  const History h = m.fit(Dataset{x, y}, opt);
  EXPECT_GT(h.final_accuracy(), 0.99f);  // R²
  EXPECT_LT(h.final_loss(), 0.01f);
}

TEST(Model, ConvModelTrainsOnSyntheticProfiles) {
  io::ClassificationSpec spec;
  spec.samples = 120;
  spec.features = 64;
  spec.classes = 2;
  spec.informative = 16;
  spec.class_sep = 2.0;
  spec.noise = 0.8;
  spec.seed = 11;
  Dataset d = io::make_classification(spec);

  Model m;
  m.add<ExpandDims>();
  m.add<Conv1D>(4, 5, 1, Act::kRelu);
  m.add<MaxPool1D>(4);
  m.add<Flatten>();
  m.add<Dense>(8, Act::kRelu);
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({64}, make_optimizer("sgd", 0.05),
            make_loss("categorical_crossentropy"), 5);
  FitOptions opt;
  opt.epochs = 30;
  opt.batch_size = 20;
  const History h = m.fit(d, opt);
  EXPECT_GE(h.final_accuracy(), 0.9f);
}

TEST(Model, ValidationSplitReportsValMetrics) {
  io::ClassificationSpec spec;
  spec.samples = 200;
  spec.features = 10;
  spec.classes = 2;
  spec.informative = 10;
  spec.class_sep = 2.5;
  spec.noise = 0.5;
  Dataset d = io::make_classification(spec);
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({10}, make_optimizer("sgd", 0.1),
            make_loss("categorical_crossentropy"), 1);
  FitOptions opt;
  opt.epochs = 20;
  opt.batch_size = 20;
  opt.validation_fraction = 0.25;
  const History h = m.fit(d, opt);
  EXPECT_GT(h.epochs.back().val_accuracy, 0.8f);
  EXPECT_GT(h.epochs.back().val_loss, 0.0f);
}

TEST(Model, HistoryCountsBatchSteps) {
  Dataset d{Tensor({50, 4}), Tensor({50, 2})};
  for (std::size_t i = 0; i < 50; ++i) d.y.at(i, i % 2) = 1.0f;
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({4}, make_optimizer("sgd", 0.01),
            make_loss("categorical_crossentropy"), 1);
  FitOptions opt;
  opt.epochs = 2;
  opt.batch_size = 20;
  const History h = m.fit(d, opt);
  // ceil(50/20) = 3 steps per epoch (final partial batch kept).
  EXPECT_EQ(h.epochs[0].batch_steps, 3u);
  EXPECT_EQ(h.epochs[1].batch_steps, 3u);
}

TEST(Model, DropRemainderSkipsPartialBatch) {
  Dataset d{Tensor({50, 4}), Tensor({50, 2})};
  for (std::size_t i = 0; i < 50; ++i) d.y.at(i, i % 2) = 1.0f;
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({4}, make_optimizer("sgd", 0.01),
            make_loss("categorical_crossentropy"), 1);
  FitOptions opt;
  opt.epochs = 1;
  opt.batch_size = 20;
  opt.drop_remainder = true;
  EXPECT_EQ(m.fit(d, opt).epochs[0].batch_steps, 2u);
}

/// Callback hook ordering.
class RecordingCallback : public Callback {
 public:
  std::vector<std::string> log;
  void on_train_begin(Model&) override { log.push_back("train_begin"); }
  void on_epoch_begin(Model&, std::size_t e) override {
    log.push_back("epoch_begin:" + std::to_string(e));
  }
  void on_epoch_end(Model&, const EpochStats& s) override {
    log.push_back("epoch_end:" + std::to_string(s.epoch));
  }
  void on_batch_end(Model&, std::size_t) override { log.push_back("batch"); }
};

TEST(Model, CallbackSequence) {
  Dataset d{Tensor({8, 2}), Tensor({8, 2})};
  for (std::size_t i = 0; i < 8; ++i) d.y.at(i, 0) = 1.0f;
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({2}, make_optimizer("sgd", 0.01),
            make_loss("categorical_crossentropy"), 1);
  RecordingCallback cb;
  FitOptions opt;
  opt.epochs = 2;
  opt.batch_size = 4;
  (void)m.fit(d, opt, {&cb});
  ASSERT_GE(cb.log.size(), 7u);
  EXPECT_EQ(cb.log[0], "train_begin");
  EXPECT_EQ(cb.log[1], "epoch_begin:0");
  EXPECT_EQ(cb.log[2], "batch");
  EXPECT_EQ(cb.log[4], "epoch_end:0");
}

TEST(Model, SummaryListsLayers) {
  Model m;
  m.add<Dense>(4, Act::kRelu);
  m.add<Dropout>(0.1);
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.01),
            make_loss("categorical_crossentropy"), 1);
  const std::string s = m.summary();
  EXPECT_NE(s.find("Dense(4, relu)"), std::string::npos);
  EXPECT_NE(s.find("Dropout(0.10)"), std::string::npos);
  EXPECT_NE(s.find("total trainable parameters"), std::string::npos);
}

// Parameterized sweep: every optimizer fits the same separable problem.
class OptimizerSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerSweep, FitsSeparableData) {
  io::ClassificationSpec spec;
  spec.samples = 150;
  spec.features = 8;
  spec.classes = 3;
  spec.informative = 8;
  spec.class_sep = 2.5;
  spec.noise = 0.6;
  spec.seed = 21;
  Dataset d = io::make_classification(spec);
  Model m;
  m.add<Dense>(16, Act::kRelu);
  m.add<Dense>(3, Act::kSoftmax);
  const double lr = GetParam() == std::string("sgd") ? 0.05 : 0.01;
  m.compile({8}, make_optimizer(GetParam(), lr),
            make_loss("categorical_crossentropy"), 2);
  FitOptions opt;
  opt.epochs = 40;
  opt.batch_size = 25;
  EXPECT_GE(m.fit(d, opt).final_accuracy(), 0.9f) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerSweep,
                         ::testing::Values("sgd", "adam", "rmsprop"));

// Parameterized sweep: batch size never breaks the training loop and the
// step count follows ceil(n / batch).
class BatchSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizeSweep, StepCountMatchesCeilDiv) {
  const std::size_t batch = GetParam();
  Dataset d{Tensor({97, 4}), Tensor({97, 2})};
  for (std::size_t i = 0; i < 97; ++i) d.y.at(i, i % 2) = 1.0f;
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({4}, make_optimizer("sgd", 0.01),
            make_loss("categorical_crossentropy"), 1);
  FitOptions opt;
  opt.epochs = 1;
  opt.batch_size = batch;
  const History h = m.fit(d, opt);
  EXPECT_EQ(h.epochs[0].batch_steps, (97 + batch - 1) / batch);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeSweep,
                         ::testing::Values(1, 7, 20, 60, 97, 100));

}  // namespace
}  // namespace candle::nn
