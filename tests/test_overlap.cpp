// Tests for backward-overlapped gradient communication (hvd/bucket_scheduler
// + the Model gradient-ready hook + the DistributedOptimizer drain path):
// deterministic bucket assignment, bit-exact overlapped-vs-synchronous
// training on NT3/P1B1 mini-configs across rank and thread counts, drain
// semantics, per-bucket timeline granularity, and a TSan-targeted stress
// case in the spirit of tests/test_comm_stress.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "candle/models.h"
#include "comm/communicator.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "hvd/broadcast.h"
#include "hvd/bucket_scheduler.h"
#include "hvd/context.h"
#include "hvd/distributed_optimizer.h"
#include "hvd/fusion.h"
#include "nn/callbacks.h"
#include "nn/dataset.h"
#include "nn/model.h"
#include "sim/calibration.h"
#include "sim/machine.h"
#include "sim/run_sim.h"
#include "trace/timeline.h"

namespace candle {
namespace {

using hvd::assign_buckets;
using hvd::Bucket;
using hvd::BucketScheduler;
using hvd::Context;
using hvd::FusionBuffer;
using hvd::FusionOptions;
using hvd::FusionStats;

/// Restores the ambient pool width when a test scope ends (the bit-exact
/// sweep runs at several CANDLE_NUM_THREADS settings).
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n)
      : saved_(parallel::num_threads()) {
    parallel::set_num_threads(n);
  }
  ~ThreadCountGuard() { parallel::set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  std::size_t saved_;
};

// ---------------------------------------------------------------------------
// Bucket assignment: pure, deterministic, identical on every rank
// ---------------------------------------------------------------------------

TEST(BucketAssign, DeterministicAcrossWorldSizes) {
  // The plan is a pure function of (numels, threshold): every rank of any
  // world must compute the identical plan, or the barrier-sequenced
  // collectives would deadlock/mismatch.
  const std::vector<std::size_t> numels{60, 60, 60, 5, 200, 1, 1, 30};
  const std::size_t threshold = 130 * sizeof(float);
  const std::vector<Bucket> reference = assign_buckets(numels, threshold);
  for (std::size_t ranks : {1u, 2u, 4u}) {
    comm::World::run(ranks, [&](comm::Communicator& c) {
      (void)c;
      const std::vector<Bucket> mine = assign_buckets(numels, threshold);
      ASSERT_EQ(mine.size(), reference.size());
      for (std::size_t b = 0; b < mine.size(); ++b) {
        EXPECT_EQ(mine[b].tensors, reference[b].tensors);
        EXPECT_EQ(mine[b].elems, reference[b].elems);
        EXPECT_EQ(mine[b].in_place, reference[b].in_place);
      }
    });
  }
}

TEST(BucketAssign, ReproducesSynchronousGrouping) {
  // The exact groupings the synchronous fusion tests pin down
  // (tests/test_hvd.cpp), now as explicit plans.
  {
    // Threshold 130 floats, 3 x 60 floats: {0,1} fuse, {2} spills.
    const auto plan = assign_buckets({60, 60, 60}, 130 * sizeof(float));
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].tensors, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(plan[0].elems, 120u);
    EXPECT_FALSE(plan[0].in_place);
    EXPECT_EQ(plan[1].tensors, (std::vector<std::size_t>{2}));
  }
  {
    // Oversized tensor gets an in-place bucket of its own.
    const auto plan = assign_buckets({2, 100}, 16);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_FALSE(plan[0].in_place);
    EXPECT_TRUE(plan[1].in_place);
    EXPECT_EQ(plan[1].tensors, (std::vector<std::size_t>{1}));
  }
  {
    // Threshold 0 disables fusion: one in-place bucket per tensor.
    const auto plan = assign_buckets({5, 5, 5}, 0);
    ASSERT_EQ(plan.size(), 3u);
    for (std::size_t b = 0; b < plan.size(); ++b) {
      EXPECT_TRUE(plan[b].in_place);
      EXPECT_EQ(plan[b].tensors, (std::vector<std::size_t>{b}));
    }
  }
  {
    // Everything fits: one bucket.
    const auto plan = assign_buckets({100, 100, 100}, 64ull << 20);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].elems, 300u);
  }
}

// ---------------------------------------------------------------------------
// FusionBuffer: persistent per-rank scratch
// ---------------------------------------------------------------------------

TEST(FusionBufferTest, GrowsMonotonicallyAndReusesStorage) {
  FusionBuffer buf;
  EXPECT_EQ(buf.capacity_elems(), 0u);
  const float* p = buf.acquire(100).data();
  EXPECT_EQ(buf.capacity_elems(), 100u);
  // Smaller acquires reuse the same allocation.
  EXPECT_EQ(buf.acquire(40).data(), p);
  EXPECT_EQ(buf.capacity_elems(), 100u);
  EXPECT_EQ(buf.acquire(100).data(), p);
  buf.acquire(250);
  EXPECT_EQ(buf.capacity_elems(), 250u);
}

TEST(FusionBufferTest, DistributedOptimizerReusesOneBufferAcrossSteps) {
  comm::World::run(2, [](comm::Communicator& c) {
    Context ctx(c);
    FusionOptions fusion;
    fusion.threshold_bytes = 64 * sizeof(float);
    hvd::DistributedOptimizer opt(nn::make_optimizer("sgd", 0.1), ctx,
                                  fusion);
    Tensor w1({40}, 1.0f), w2({24}, 1.0f), w3({10}, 1.0f);
    Tensor g1({40}, 0.1f), g2({24}, 0.1f), g3({10}, 0.1f);
    opt.apply({&w1, &w2, &w3}, {&g1, &g2, &g3});
    // Largest packed bucket is {g1, g2} = 64 elems.
    EXPECT_EQ(opt.fusion_buffer().capacity_elems(), 64u);
    const float* p = opt.fusion_buffer().data();
    for (int step = 0; step < 5; ++step)
      opt.apply({&w1, &w2, &w3}, {&g1, &g2, &g3});
    // Steps after the first reuse the same allocation — no per-call growth.
    EXPECT_EQ(opt.fusion_buffer().capacity_elems(), 64u);
    EXPECT_EQ(opt.fusion_buffer().data(), p);
  });
}

// ---------------------------------------------------------------------------
// BucketScheduler semantics
// ---------------------------------------------------------------------------

TEST(Scheduler, ReducesBucketsMarkedInReverseOrder) {
  const std::size_t ranks = 4;
  comm::World::run(ranks, [&](comm::Communicator& c) {
    Context ctx(c);
    FusionOptions fusion;
    fusion.threshold_bytes = 16 * sizeof(float);  // one 16-float bucket each
    FusionBuffer buffer;
    BucketScheduler scheduler(ctx, fusion, buffer);

    std::vector<Tensor> grads;
    for (int t = 0; t < 8; ++t) grads.emplace_back(Shape{16});
    std::vector<Tensor*> ptrs;
    for (auto& g : grads) ptrs.push_back(&g);
    scheduler.bind(ptrs);
    ASSERT_EQ(scheduler.bucket_count(), 8u);

    for (int step = 0; step < 3; ++step) {
      for (std::size_t t = 0; t < grads.size(); ++t)
        for (float& v : grads[t].values())
          v = static_cast<float>(c.rank() + step + t);
      EXPECT_FALSE(scheduler.armed());
      for (std::size_t t = grads.size(); t-- > 0;)
        scheduler.mark_ready(t, 1);
      EXPECT_TRUE(scheduler.armed());
      const FusionStats stats = scheduler.drain();
      EXPECT_FALSE(scheduler.armed());
      EXPECT_EQ(stats.collectives, 8u);
      EXPECT_EQ(stats.tensors, 8u);
      EXPECT_EQ(stats.buckets_overlapped, 8u);
      // Small integers: sums and the /4 average are exact in fp32.
      for (std::size_t t = 0; t < grads.size(); ++t) {
        float expected = 0.0f;
        for (std::size_t r = 0; r < ranks; ++r)
          expected += static_cast<float>(r + static_cast<std::size_t>(step) +
                                         t);
        expected /= static_cast<float>(ranks);
        for (float v : grads[t].values()) ASSERT_FLOAT_EQ(v, expected);
      }
    }
  });
}

TEST(Scheduler, DrainBeforeAllGradientsReadyThrows) {
  comm::World::run(1, [](comm::Communicator& c) {
    Context ctx(c);
    FusionOptions fusion;
    fusion.threshold_bytes = 0;  // one bucket per tensor
    FusionBuffer buffer;
    BucketScheduler scheduler(ctx, fusion, buffer);
    Tensor g0({4}, 1.0f), g1({4}, 2.0f);
    scheduler.bind({&g0, &g1});
    // Only bucket 0 ever completes; bucket 1 (processed first in
    // descending order) never would — drain turns the deadlock into an
    // error instead of hanging.
    scheduler.mark_ready(0, 1);
    EXPECT_THROW((void)scheduler.drain(), InvalidArgument);
  });
}

TEST(Scheduler, MarkReadyTwiceOrOutOfRangeThrows) {
  comm::World::run(1, [](comm::Communicator& c) {
    Context ctx(c);
    FusionOptions fusion;
    fusion.threshold_bytes = 0;
    FusionBuffer buffer;
    BucketScheduler scheduler(ctx, fusion, buffer);
    Tensor g({4}, 1.0f);
    scheduler.bind({&g});
    EXPECT_THROW(scheduler.mark_ready(1, 1), InvalidArgument);
    scheduler.mark_ready(0, 1);
    EXPECT_THROW(scheduler.mark_ready(0, 1), InvalidArgument);
    (void)scheduler.drain();
  });
}

TEST(Scheduler, TsanStressManySmallBucketsManySteps) {
  // TSan-targeted: 4 comm threads + 4 rank threads hammer mark_ready /
  // drain hand-offs and interleaved per-bucket collectives for 25 steps.
  // Exact averaged values double as a lost/duplicated-bucket detector.
  const std::size_t ranks = 4;
  const std::size_t tensors = 32;
  const int steps = 25;
  comm::World::run(ranks, [&](comm::Communicator& c) {
    Context ctx(c);
    FusionOptions fusion;
    fusion.threshold_bytes = 16 * sizeof(float);
    FusionBuffer buffer;
    BucketScheduler scheduler(ctx, fusion, buffer);

    std::vector<Tensor> grads;
    for (std::size_t t = 0; t < tensors; ++t) grads.emplace_back(Shape{16});
    std::vector<Tensor*> ptrs;
    for (auto& g : grads) ptrs.push_back(&g);
    scheduler.bind(ptrs);
    ASSERT_EQ(scheduler.bucket_count(), tensors);

    for (int step = 0; step < steps; ++step) {
      for (std::size_t t = 0; t < tensors; ++t)
        for (float& v : grads[t].values())
          v = static_cast<float>(c.rank() * 2 + (step % 3) + t);
      for (std::size_t t = tensors; t-- > 0;) scheduler.mark_ready(t, 1);
      const FusionStats stats = scheduler.drain();
      ASSERT_EQ(stats.buckets_overlapped, tensors);
      for (std::size_t t = 0; t < tensors; ++t) {
        float expected = 0.0f;
        for (std::size_t r = 0; r < ranks; ++r)
          expected += static_cast<float>(
              r * 2 + (static_cast<std::size_t>(step) % 3) + t);
        expected /= static_cast<float>(ranks);
        for (float v : grads[t].values()) ASSERT_FLOAT_EQ(v, expected);
      }
    }
  });
}

TEST(Scheduler, TsanStressInt8ErrorFeedbackResiduals) {
  // TSan-targeted: with error feedback the comm thread also read-modify-
  // writes the persistent per-bucket residual buffers while rank threads
  // mark buckets ready. Two identical runs must produce identical bits in
  // both gradients and residuals — a race that altered ordering would show
  // as a bitwise diff, and any unsynchronized access trips TSan directly.
  const std::size_t ranks = 4, tensors = 24;
  const int steps = 15;
  std::vector<std::vector<float>> grad_runs(2), resid_runs(2);
  for (int run = 0; run < 2; ++run) {
    comm::World::run(ranks, [&](comm::Communicator& c) {
      Context ctx(c);
      FusionOptions fusion;
      fusion.threshold_bytes = 64 * sizeof(float);
      fusion.wire_dtype = comm::WireDtype::kInt8;
      fusion.error_feedback = true;
      fusion.compress_min_elems = 1;
      FusionBuffer buffer;
      hvd::ResidualState residuals;
      BucketScheduler scheduler(ctx, fusion, buffer, &residuals);
      std::vector<Tensor> grads;
      for (std::size_t t = 0; t < tensors; ++t)
        grads.emplace_back(t % 2 == 0 ? Shape{129}   // in-place bucket
                                      : Shape{31});  // fuses with neighbors
      std::vector<Tensor*> ptrs;
      for (auto& g : grads) ptrs.push_back(&g);
      scheduler.bind(ptrs);
      for (int step = 0; step < steps; ++step) {
        for (std::size_t t = 0; t < tensors; ++t) {
          std::size_t i = 0;
          for (float& v : grads[t].values())
            v = 0.37f * static_cast<float>(c.rank() + 1) *
                std::sin(static_cast<float>(i++ + t + 7 *
                                            static_cast<std::size_t>(step)));
        }
        for (std::size_t t = tensors; t-- > 0;) scheduler.mark_ready(t, 1);
        (void)scheduler.drain();
      }
      if (c.rank() == 0) {
        std::vector<float>& g = grad_runs[run];
        for (const auto& t : grads)
          g.insert(g.end(), t.data(), t.data() + t.numel());
        std::vector<float>& r = resid_runs[run];
        for (std::size_t b = 0; b < residuals.buckets(); ++b) {
          const std::span<float> s = residuals.buffer(b);
          r.insert(r.end(), s.begin(), s.end());
        }
      }
    });
  }
  ASSERT_EQ(grad_runs[0].size(), grad_runs[1].size());
  ASSERT_EQ(0, std::memcmp(grad_runs[0].data(), grad_runs[1].data(),
                           grad_runs[0].size() * sizeof(float)));
  ASSERT_EQ(resid_runs[0].size(), resid_runs[1].size());
  ASSERT_GT(resid_runs[0].size(), 0u);
  ASSERT_EQ(0, std::memcmp(resid_runs[0].data(), resid_runs[1].data(),
                           resid_runs[0].size() * sizeof(float)));
  bool any_nonzero = false;
  for (float v : resid_runs[0]) any_nonzero |= v != 0.0f;
  EXPECT_TRUE(any_nonzero);
}

// ---------------------------------------------------------------------------
// Per-bucket timeline granularity
// ---------------------------------------------------------------------------

TEST(OverlapTimeline, OneNegotiateAndNcclEventPerBucket) {
  trace::Timeline timeline;
  Stopwatch clock;
  comm::World::run(2, [&](comm::Communicator& c) {
    Context ctx(c, &timeline, &clock);
    FusionOptions fusion;
    fusion.threshold_bytes = 16 * sizeof(float);
    FusionBuffer buffer;
    BucketScheduler scheduler(ctx, fusion, buffer);
    std::vector<Tensor> grads;
    for (int t = 0; t < 5; ++t) grads.emplace_back(Shape{16}, 1.0f);
    std::vector<Tensor*> ptrs;
    for (auto& g : grads) ptrs.push_back(&g);
    scheduler.bind(ptrs);
    for (std::size_t t = grads.size(); t-- > 0;) scheduler.mark_ready(t, 1);
    (void)scheduler.drain();
  });
  for (std::size_t rank = 0; rank < 2; ++rank) {
    EXPECT_EQ(timeline.count_events(trace::kNegotiateAllreduce, rank), 5u);
    EXPECT_EQ(timeline.count_events(trace::kNcclAllreduce, rank), 5u);
  }
}

TEST(OverlapTimeline, SynchronousPathRecordsPerBucketNcclEvents) {
  trace::Timeline timeline;
  Stopwatch clock;
  comm::World::run(2, [&](comm::Communicator& c) {
    Context ctx(c, &timeline, &clock);
    FusionOptions fusion;
    fusion.threshold_bytes = 130 * sizeof(float);
    hvd::DistributedOptimizer opt(nn::make_optimizer("sgd", 0.1), ctx,
                                  fusion);
    Tensor w1({60}, 1.0f), w2({60}, 1.0f), w3({60}, 1.0f);
    Tensor g1({60}, 0.1f), g2({60}, 0.1f), g3({60}, 0.1f);
    opt.apply({&w1, &w2, &w3}, {&g1, &g2, &g3});  // {g1,g2} + {g3}
  });
  for (std::size_t rank = 0; rank < 2; ++rank) {
    // One negotiate barrier per step, one NCCL event per fusion bucket.
    EXPECT_EQ(timeline.count_events(trace::kNegotiateAllreduce, rank), 1u);
    EXPECT_EQ(timeline.count_events(trace::kNcclAllreduce, rank), 2u);
  }
}

// ---------------------------------------------------------------------------
// Bit-exact overlapped vs synchronous training (the correctness bar)
// ---------------------------------------------------------------------------

struct FitOutcome {
  std::vector<std::vector<float>> weights;  // per-rank flattened params
  std::vector<float> losses;                // rank-0 per-epoch losses
  FusionStats stats;                        // rank-0 optimizer stats
  std::size_t epochs_run = 0;
  std::vector<std::vector<float>> residuals;  // rank-0 per-bucket EF state
};

FitOutcome run_benchmark_fit(BenchmarkId id, std::size_t ranks, bool overlap,
                             std::size_t epochs = 2, bool early_stop = false,
                             comm::WireDtype wire = comm::WireDtype::kFp32,
                             bool error_feedback = false,
                             std::size_t compress_min_elems = 1024,
                             double lr = 0.01,
                             std::size_t threshold_bytes = 4 * 1024,
                             std::size_t batch_size = 16,
                             bool shard_rows = false) {
  const ScaledGeometry geometry = scaled_geometry(id, 0.002);
  const BenchmarkData data = make_benchmark_data(id, geometry, /*seed=*/11);
  const std::size_t n = std::min<std::size_t>(64, data.train.size());
  FitOutcome out;
  out.weights.resize(ranks);
  comm::World::run(ranks, [&](comm::Communicator& c) {
    // Default: every rank fits the same rows (the bit-exact sweeps).
    // shard_rows: classic data parallelism — rank r trains its own slice,
    // so per-rank gradients disagree and the allreduce average carries
    // real information.
    const std::size_t row0 = shard_rows ? c.rank() * n / ranks : 0;
    const std::size_t row1 = shard_rows ? (c.rank() + 1) * n / ranks : n;
    const nn::Dataset train{nn::take_rows(data.train.x, row0, row1 - row0),
                            nn::take_rows(data.train.y, row0, row1 - row0)};
    Context ctx(c);
    nn::Model model = build_model(id, geometry);
    FusionOptions fusion;
    fusion.threshold_bytes = threshold_bytes;
    fusion.overlap = overlap;
    fusion.wire_dtype = wire;
    fusion.error_feedback = error_feedback;
    fusion.compress_min_elems = compress_min_elems;
    auto opt = std::make_unique<hvd::DistributedOptimizer>(
        nn::make_optimizer(benchmark_optimizer(id), lr), ctx, fusion);
    hvd::DistributedOptimizer* dist = opt.get();
    model.compile({geometry.features}, std::move(opt),
                  nn::make_loss(benchmark_loss(id)),
                  /*seed=*/5 + c.rank());  // rank-distinct init
    if (overlap) dist->enable_overlap(model);

    hvd::BroadcastGlobalVariablesHook broadcast(ctx, 0);
    nn::EarlyStopping stopping(/*patience=*/0, /*min_delta=*/1e9);
    std::vector<nn::Callback*> callbacks{&broadcast};
    if (early_stop) callbacks.push_back(&stopping);

    nn::FitOptions fit;
    fit.epochs = epochs;
    fit.batch_size = batch_size;
    fit.shuffle = false;  // identical batch order on every rank
    fit.classification = benchmark_is_classification(id);
    const nn::History history = model.fit(train, fit, callbacks);

    std::vector<float> flat;
    for (Tensor* p : model.parameters())
      flat.insert(flat.end(), p->data(), p->data() + p->numel());
    out.weights[c.rank()] = std::move(flat);
    if (c.rank() == 0) {
      for (const auto& e : history.epochs) out.losses.push_back(e.loss);
      out.stats = dist->fusion_stats();
      out.epochs_run = history.epochs.size();
      const hvd::ResidualState& rs = dist->residual_state();
      for (std::size_t b = 0; b < rs.buckets(); ++b) {
        const std::span<const float> r = rs.buffer(b);
        out.residuals.emplace_back(r.begin(), r.end());
      }
    }
  });
  return out;
}

void expect_bit_identical(const FitOutcome& a, const FitOutcome& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t r = 0; r < a.weights.size(); ++r) {
    ASSERT_EQ(a.weights[r].size(), b.weights[r].size());
    ASSERT_EQ(0, std::memcmp(a.weights[r].data(), b.weights[r].data(),
                             a.weights[r].size() * sizeof(float)))
        << "rank " << r << ": overlapped weights differ from synchronous";
  }
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t e = 0; e < a.losses.size(); ++e)
    ASSERT_EQ(a.losses[e], b.losses[e]) << "epoch " << e;
}

TEST(OverlapEquivalence, BitExactOnMiniBenchmarksAcrossRanksAndThreads) {
  for (BenchmarkId id : {BenchmarkId::kNT3, BenchmarkId::kP1B1}) {
    for (std::size_t ranks : {1u, 2u, 4u}) {
      for (std::size_t threads : {1u, 4u}) {
        SCOPED_TRACE(std::string(benchmark_name(id)) + " ranks=" +
                     std::to_string(ranks) + " threads=" +
                     std::to_string(threads));
        ThreadCountGuard guard(threads);
        const FitOutcome sync = run_benchmark_fit(id, ranks, false);
        const FitOutcome ovl = run_benchmark_fit(id, ranks, true);
        expect_bit_identical(sync, ovl);
        // FusionStats agree between the paths except for the overlap
        // counter: every overlapped collective was a bucket reduced on
        // the comm thread; the synchronous path overlaps none.
        EXPECT_EQ(sync.stats.collectives, ovl.stats.collectives);
        EXPECT_EQ(sync.stats.tensors, ovl.stats.tensors);
        EXPECT_EQ(sync.stats.fused_bytes, ovl.stats.fused_bytes);
        EXPECT_EQ(sync.stats.buckets_overlapped, 0u);
        EXPECT_EQ(ovl.stats.buckets_overlapped, ovl.stats.collectives);
        EXPECT_GT(ovl.stats.buckets_overlapped, 0u);
      }
    }
  }
}

TEST(OverlapEquivalence, CompressedBucketsStayBitExactOverlappedVsSync) {
  // The overlap correctness bar extends to compressed buckets: with the
  // same wire dtype on both paths, reducing a bucket on the comm thread
  // must produce the same bits as the synchronous sweep — the quantization
  // schedule depends only on the bucket plan and rank count, not on which
  // thread issues the collective.
  for (comm::WireDtype wire : {comm::WireDtype::kFp16, comm::WireDtype::kBf16,
                               comm::WireDtype::kInt8}) {
    for (const bool error_feedback : {false, true}) {
      for (std::size_t ranks : {2u, 4u}) {
        SCOPED_TRACE(std::string(comm::wire_dtype_name(wire)) +
                     (error_feedback ? "+ef" : "") + " ranks=" +
                     std::to_string(ranks));
        const FitOutcome sync = run_benchmark_fit(
            BenchmarkId::kNT3, ranks, false, /*epochs=*/2,
            /*early_stop=*/false, wire, error_feedback,
            /*compress_min_elems=*/64);
        const FitOutcome ovl = run_benchmark_fit(
            BenchmarkId::kNT3, ranks, true, /*epochs=*/2,
            /*early_stop=*/false, wire, error_feedback,
            /*compress_min_elems=*/64);
        expect_bit_identical(sync, ovl);
        EXPECT_EQ(ovl.stats.buckets_overlapped, ovl.stats.collectives);
        if (error_feedback) {
          // The two paths share one residual recurrence — the persistent
          // per-bucket state must match bit for bit, not just the weights.
          ASSERT_EQ(sync.residuals.size(), ovl.residuals.size());
          ASSERT_GT(sync.residuals.size(), 0u);
          bool any_nonzero = false;
          for (std::size_t b = 0; b < sync.residuals.size(); ++b) {
            ASSERT_EQ(sync.residuals[b].size(), ovl.residuals[b].size());
            ASSERT_EQ(0, std::memcmp(sync.residuals[b].data(),
                                     ovl.residuals[b].data(),
                                     sync.residuals[b].size() *
                                         sizeof(float)))
                << "bucket " << b;
            for (float v : sync.residuals[b]) any_nonzero |= v != 0.0f;
          }
          // A lossy wire must actually have left rounding error behind,
          // or the feedback path was never exercised.
          EXPECT_TRUE(any_nonzero);
        }
      }
    }
  }
}

TEST(ErrorFeedback, ResidualsDeterministicAcrossRerunsAndRankCounts) {
  // The residual is a pure function of the rank's gradient stream: rerunning
  // an identical fit reproduces it bit for bit at every rank count, and a
  // different rank count still yields a valid (finite, bucket-shaped) state.
  for (std::size_t ranks : {2u, 3u}) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    const FitOutcome a = run_benchmark_fit(
        BenchmarkId::kP1B1, ranks, true, /*epochs=*/2, /*early_stop=*/false,
        comm::WireDtype::kInt8, /*error_feedback=*/true,
        /*compress_min_elems=*/64);
    const FitOutcome b = run_benchmark_fit(
        BenchmarkId::kP1B1, ranks, true, /*epochs=*/2, /*early_stop=*/false,
        comm::WireDtype::kInt8, /*error_feedback=*/true,
        /*compress_min_elems=*/64);
    ASSERT_EQ(a.residuals.size(), b.residuals.size());
    ASSERT_GT(a.residuals.size(), 0u);
    for (std::size_t k = 0; k < a.residuals.size(); ++k) {
      ASSERT_EQ(a.residuals[k].size(), b.residuals[k].size());
      ASSERT_EQ(0, std::memcmp(a.residuals[k].data(), b.residuals[k].data(),
                               a.residuals[k].size() * sizeof(float)))
          << "bucket " << k;
      for (float v : a.residuals[k]) ASSERT_TRUE(std::isfinite(v));
    }
    expect_bit_identical(a, b);
  }
}

TEST(ErrorFeedback, Fp32WireLeavesResidualsAllZero) {
  // EF with a lossless wire is the identity: C(p) == p, so e stays 0 and
  // training matches plain fp32 bit for bit.
  const FitOutcome plain = run_benchmark_fit(BenchmarkId::kNT3, 2, true);
  const FitOutcome ef = run_benchmark_fit(
      BenchmarkId::kNT3, 2, true, /*epochs=*/2, /*early_stop=*/false,
      comm::WireDtype::kFp32, /*error_feedback=*/true);
  expect_bit_identical(plain, ef);
  for (const auto& bucket : ef.residuals)
    for (float v : bucket) ASSERT_EQ(v, 0.0f);
}

TEST(OverlapEquivalence, CompressedTrainingTracksFp32Loss) {
  // fp16/bf16 wire gradients must not derail mini-training: per-epoch loss
  // stays within a small relative band of the bit-exact fp32 run. The band
  // is loose relative to the per-hop codec error bounds (2^-11 / 2^-8)
  // because quantization error compounds through the optimizer across
  // steps; what is being pinned down is "training tracks", not a bound.
  for (BenchmarkId id : {BenchmarkId::kNT3, BenchmarkId::kP1B1}) {
    const FitOutcome fp32 = run_benchmark_fit(id, 2, true, /*epochs=*/3);
    ASSERT_FALSE(fp32.losses.empty());
    for (comm::WireDtype wire :
         {comm::WireDtype::kFp16, comm::WireDtype::kBf16}) {
      SCOPED_TRACE(std::string(benchmark_name(id)) + " " +
                   comm::wire_dtype_name(wire));
      const FitOutcome q = run_benchmark_fit(id, 2, true, /*epochs=*/3,
                                             /*early_stop=*/false, wire);
      ASSERT_EQ(q.losses.size(), fp32.losses.size());
      for (std::size_t e = 0; e < q.losses.size(); ++e) {
        EXPECT_TRUE(std::isfinite(q.losses[e]));
        EXPECT_NEAR(q.losses[e], fp32.losses[e],
                    0.05 * std::abs(fp32.losses[e]) + 1e-4)
            << "epoch " << e;
      }
    }
  }
}

TEST(ErrorFeedback, ClosesInt8LossGapTowardFp32) {
  // The acceptance bar for int8 wire gradients, in the regime where the
  // codec's rounding error is actually correlated with the signal: four
  // ranks train disjoint shards full-batch (deterministic per-rank
  // gradient streams that disagree across ranks), every tensor fuses into
  // one bucket, and all buckets compress. Raw int8 then drifts off the
  // fp32 trajectory — each step re-rounds the same gradients the same way
  // and the error is never repaid — while error feedback re-injects the
  // rounding error into the next step and stays inside the band. With
  // fresh stochastic batches the chunked codec is accurate enough that
  // both variants track fp32; this pins the regime where they part ways.
  ThreadCountGuard guard(4);  // fixed pool width: fits are deterministic
  for (BenchmarkId id : {BenchmarkId::kNT3, BenchmarkId::kP1B1}) {
    SCOPED_TRACE(benchmark_name(id));
    const double lr = 0.02;
    const std::size_t epochs = 100;
    const std::size_t bucket = 64u << 20;  // one fused bucket
    const std::size_t batch = 64;          // full shard per step
    const bool shard = true;
    const std::size_t ranks = 4;
    const FitOutcome fp32 = run_benchmark_fit(
        id, ranks, true, epochs, false, comm::WireDtype::kFp32, false, 1024,
        lr, bucket, batch, shard);
    const FitOutcome raw = run_benchmark_fit(
        id, ranks, true, epochs, /*early_stop=*/false, comm::WireDtype::kInt8,
        /*error_feedback=*/false, /*compress_min_elems=*/1, lr, bucket,
        batch, shard);
    const FitOutcome ef = run_benchmark_fit(
        id, ranks, true, epochs, /*early_stop=*/false, comm::WireDtype::kInt8,
        /*error_feedback=*/true, /*compress_min_elems=*/1, lr, bucket,
        batch, shard);
    ASSERT_EQ(fp32.losses.size(), epochs);
    ASSERT_EQ(raw.losses.size(), epochs);
    ASSERT_EQ(ef.losses.size(), epochs);
    const double ref = static_cast<double>(fp32.losses.back());
    const double gap_raw =
        std::abs(static_cast<double>(raw.losses.back()) - ref);
    const double gap_ef =
        std::abs(static_cast<double>(ef.losses.back()) - ref);
    std::printf("[loss-gap] %s fp32=%.6f raw-int8=%.6f (gap %.3e) "
                "int8+ef=%.6f (gap %.3e)\n",
                benchmark_name(id), ref,
                static_cast<double>(raw.losses.back()), gap_raw,
                static_cast<double>(ef.losses.back()), gap_ef);
    for (float v : ef.losses) EXPECT_TRUE(std::isfinite(v));
    // Error feedback lands within the band of fp32; raw int8 does not,
    // and the feedback gap is decisively smaller, not marginally.
    const double tolerance = 0.04 * std::abs(ref);
    EXPECT_LE(gap_ef, tolerance);
    EXPECT_GT(gap_raw, tolerance);
    EXPECT_LT(gap_ef, 0.6 * gap_raw);
  }
}

TEST(OverlapEquivalence, EarlyStopDrainsInFlightBucketsAndStaysBitExact) {
  // EarlyStopping ends fit() between epochs; every step's in-flight buckets
  // must have been drained by apply() before the stop decision, so the
  // overlapped run stops at the same epoch with identical weights.
  const FitOutcome sync = run_benchmark_fit(BenchmarkId::kP1B1, 2, false,
                                            /*epochs=*/6,
                                            /*early_stop=*/true);
  const FitOutcome ovl = run_benchmark_fit(BenchmarkId::kP1B1, 2, true,
                                           /*epochs=*/6,
                                           /*early_stop=*/true);
  EXPECT_LT(sync.epochs_run, 6u);  // the stop actually triggered
  EXPECT_EQ(sync.epochs_run, ovl.epochs_run);
  expect_bit_identical(sync, ovl);
}

// ---------------------------------------------------------------------------
// Simulator overlap credit
// ---------------------------------------------------------------------------

TEST(SimOverlap, CreditsHiddenCommAgainstStepTime) {
  const sim::RunSimulator simulator(sim::Machine::summit(),
                                    sim::BenchmarkProfile::nt3());
  sim::RunPlan off;
  off.ranks = 48;
  off.epochs_per_rank = 2;
  sim::RunPlan on = off;
  on.overlap_comm = true;
  const sim::SimResult a = simulator.simulate(off);
  const sim::SimResult b = simulator.simulate(on);

  EXPECT_DOUBLE_EQ(a.phases.train_comm_hidden, 0.0);
  EXPECT_GT(b.phases.train_comm_hidden, 0.0);
  // Hidden + exposed == the un-overlapped comm time; compute unchanged.
  EXPECT_NEAR(b.phases.train_comm + b.phases.train_comm_hidden,
              a.phases.train_comm, 1e-9);
  EXPECT_DOUBLE_EQ(a.phases.train_compute, b.phases.train_compute);
  EXPECT_LT(b.phases.total(), a.phases.total());
  EXPECT_LT(b.time_per_epoch, a.time_per_epoch);
  // The credit is capped by the backward window of each step's compute.
  const double step_c = simulator.step_compute_seconds(
      simulator.profile().default_batch);
  const double step_ar = simulator.allreduce_step_seconds(on.ranks);
  const double per_step_hidden =
      std::min(step_ar, sim::kOverlapWindowFrac * step_c);
  const double steps =
      static_cast<double>(a.steps_per_epoch) *
      static_cast<double>(off.epochs_per_rank);
  EXPECT_NEAR(b.phases.train_comm_hidden, steps * per_step_hidden, 1e-9);
}

TEST(SimOverlap, NoCreditAtOneRank) {
  // step_ar == 0 at one rank: overlap must be a no-op.
  const sim::RunSimulator simulator(sim::Machine::summit(),
                                    sim::BenchmarkProfile::nt3());
  sim::RunPlan plan;
  plan.ranks = 1;
  plan.overlap_comm = true;
  const sim::SimResult r = simulator.simulate(plan);
  EXPECT_DOUBLE_EQ(r.phases.train_comm_hidden, 0.0);
  EXPECT_DOUBLE_EQ(r.phases.train_comm, 0.0);
}

}  // namespace
}  // namespace candle
