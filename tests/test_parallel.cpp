// Tests for the shared intra-node runtime (common/parallel.*) and the
// threaded hot paths wired onto it: partitioning determinism, exception
// propagation, nested regions, and exact threaded-vs-serial equivalence
// for GEMM, Conv1D, the in-place ops, optimizer updates, and the parallel
// CSV reader. "Exact" means bit-identical buffers at a fixed thread count
// — the determinism contract the TSan CI job runs under
// CANDLE_NUM_THREADS=4.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/aligned.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "hvd/fusion.h"
#include "io/csv_reader.h"
#include "io/synthetic.h"
#include "nn/optimizer.h"
#include "tensor/conv.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace candle {
namespace {

using parallel::parallel_for;
using parallel::parallel_reduce;
using parallel::set_num_threads;

/// Restores the ambient thread count when a test scope ends, so test order
/// never leaks a pool size into another test.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n)
      : saved_(parallel::num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  std::size_t saved_;
};

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.values()) v = static_cast<float>(rng.normal(0, 1));
  return t;
}

void expect_bit_identical(const Tensor& got, const Tensor& ref,
                          const char* what) {
  ASSERT_EQ(got.shape(), ref.shape()) << what;
  ASSERT_EQ(0, std::memcmp(got.data(), ref.data(),
                           got.numel() * sizeof(float)))
      << what << ": threaded result differs from serial";
}

// ---------------------------------------------------------------------------
// parallel_for basics
// ---------------------------------------------------------------------------

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadCountGuard guard(4);
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 1000u, 1001u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(1, hits[i].load()) << "n=" << n << " i=" << i;
  }
}

TEST(ParallelFor, HonorsNonZeroBegin) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(37, 91, 5, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(i >= 37 && i < 91 ? 1 : 0, hits[i].load()) << i;
}

TEST(ParallelFor, GrainEdgeCases) {
  ThreadCountGuard guard(4);
  // grain exceeding the range -> one inline chunk spanning everything.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(0, 10, 100, [&](std::size_t b, std::size_t e) {
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(1u, chunks.size());
  EXPECT_EQ(0u, chunks[0].first);
  EXPECT_EQ(10u, chunks[0].second);
  // Empty range: the body must never run.
  parallel_for(5, 5, 1, [](std::size_t, std::size_t) { FAIL(); });
  parallel_for(7, 3, 1, [](std::size_t, std::size_t) { FAIL(); });
  // grain 0 is a caller bug.
  EXPECT_THROW(parallel_for(0, 4, 0, [](std::size_t, std::size_t) {}),
               InvalidArgument);
}

TEST(ParallelFor, PartitionIsDeterministicAndGrainBounded) {
  // The chunk table is a pure function of (n, grain, threads): contiguous,
  // complete, sizes within one of each other and never below grain (except
  // the single-chunk case).
  for (std::size_t n : {1u, 5u, 63u, 64u, 65u, 4096u}) {
    for (std::size_t grain : {1u, 3u, 64u}) {
      for (std::size_t threads : {1u, 2u, 4u, 7u}) {
        const auto a = parallel::detail::partition(n, grain, threads);
        const auto b = parallel::detail::partition(n, grain, threads);
        ASSERT_EQ(a, b);
        ASSERT_LE(a.size(), threads);
        std::size_t at = 0;
        for (const auto& [lo, hi] : a) {
          ASSERT_EQ(at, lo);
          ASSERT_LT(lo, hi);
          at = hi;
        }
        ASSERT_EQ(n, at);
        if (a.size() > 1) {
          for (const auto& [lo, hi] : a) ASSERT_GE(hi - lo, grain);
        }
      }
    }
  }
}

TEST(ParallelFor, NeverExceedsConfiguredConcurrency) {
  // Deflake guard: the pool must never run more than CANDLE_NUM_THREADS
  // chunk bodies at once — an over-wide pool shows up elsewhere only as
  // rare nondeterministic oversubscription flakes, so pin it down here
  // with a high-water mark over many short overlapping chunks.
  constexpr std::size_t kThreads = 4;
  ThreadCountGuard guard(kThreads);
  std::atomic<int> live{0};
  std::atomic<int> high_water{0};
  for (int round = 0; round < 8; ++round) {
    parallel_for(0, 4096, 1, [&](std::size_t b, std::size_t e) {
      const int now = live.fetch_add(1) + 1;
      int hw = high_water.load();
      while (now > hw && !high_water.compare_exchange_weak(hw, now)) {
      }
      volatile float sink = 0.0f;  // keep chunks alive long enough to overlap
      for (std::size_t i = b; i < e; ++i)
        sink = sink + static_cast<float>(i);
      live.fetch_sub(1);
    });
    ASSERT_EQ(0, live.load()) << "round " << round;
  }
  EXPECT_GE(high_water.load(), 1);
  EXPECT_LE(high_water.load(), static_cast<int>(kThreads));
}

TEST(ParallelFor, SingleThreadRunsInline) {
  ThreadCountGuard guard(1);
  const auto caller = std::this_thread::get_id();
  std::size_t calls = 0;
  parallel_for(0, 1000, 1, [&](std::size_t, std::size_t) {
    // With threading disabled the body runs once, on the calling thread.
    EXPECT_EQ(caller, std::this_thread::get_id());
    ++calls;
  });
  EXPECT_EQ(1u, calls);
}

TEST(ParallelFor, NestedRegionsRunInlineAndStayCorrect) {
  ThreadCountGuard guard(4);
  const std::size_t rows = 16, cols = 256;
  std::vector<int> cells(rows * cols, 0);
  parallel_for(0, rows, 1, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      // Inner region must not deadlock against the outer one.
      parallel_for(0, cols, 1, [&](std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c < c1; ++c) cells[r * cols + c] += 1;
      });
    }
  });
  for (int v : cells) ASSERT_EQ(1, v);
}

TEST(ParallelFor, PropagatesExceptionAndPoolSurvives) {
  ThreadCountGuard guard(4);
  const auto boom = [](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      if (i == 97) throw std::runtime_error("chunk 97 failed");
  };
  EXPECT_THROW(parallel_for(0, 256, 1, boom), std::runtime_error);
  try {
    parallel_for(0, 256, 1, boom);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ("chunk 97 failed", e.what());
  }
  // The pool must stay usable after an exceptional region.
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 100, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(4950u, sum.load());
}

TEST(ParallelConfig, SetNumThreadsValidatesAndReports) {
  EXPECT_THROW(set_num_threads(0), InvalidArgument);
  ThreadCountGuard guard(3);
  EXPECT_EQ(3u, parallel::num_threads());
  set_num_threads(1);
  EXPECT_EQ(1u, parallel::num_threads());
}

TEST(ParallelConfig, EnvValueParsing) {
  using parallel::detail::parse_thread_count;
  EXPECT_EQ(5u, parse_thread_count(nullptr, 5));
  EXPECT_EQ(5u, parse_thread_count("", 5));
  EXPECT_EQ(4u, parse_thread_count("4", 5));
  EXPECT_EQ(1u, parse_thread_count("1", 5));
  EXPECT_EQ(5u, parse_thread_count("0", 5));      // zero -> fallback
  EXPECT_EQ(5u, parse_thread_count("four", 5));   // junk -> fallback
  EXPECT_EQ(5u, parse_thread_count("4x", 5));     // trailing junk
}

// ---------------------------------------------------------------------------
// parallel_reduce
// ---------------------------------------------------------------------------

TEST(ParallelReduce, MatchesSerialSumAndIsRepeatable) {
  ThreadCountGuard guard(4);
  Rng rng(7);
  std::vector<float> xs(100001);
  for (float& v : xs) v = static_cast<float>(rng.normal(0, 1));

  const auto map = [&](std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += xs[i];
    return acc;
  };
  const auto combine = [](double a, double b) { return a + b; };
  const double first =
      parallel_reduce(std::size_t{0}, xs.size(), std::size_t{1024}, 0.0,
                      map, combine);
  // Fixed thread count -> fixed chunk table -> bit-identical result.
  for (int run = 0; run < 3; ++run)
    ASSERT_EQ(first, parallel_reduce(std::size_t{0}, xs.size(),
                                     std::size_t{1024}, 0.0, map, combine));
  // And it is the true sum within fp tolerance of the serial fold.
  const double serial = std::accumulate(xs.begin(), xs.end(), 0.0);
  EXPECT_NEAR(serial, first, 1e-6 * std::abs(serial) + 1e-9);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadCountGuard guard(4);
  const int got = parallel_reduce(
      std::size_t{10}, std::size_t{10}, std::size_t{1}, 42,
      [](std::size_t, std::size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(42, got);
}

// ---------------------------------------------------------------------------
// Aligned allocation
// ---------------------------------------------------------------------------

TEST(Alignment, TensorStorageIsCacheLineAligned) {
  // Shapes straddling small/large allocator size classes; every backing
  // buffer must start on a 64-byte boundary for the AVX2 microkernel and
  // the per-worker panel math in gemm.cpp.
  for (std::size_t n : {1u, 3u, 16u, 17u, 1024u, 60483u}) {
    Tensor t({n});
    EXPECT_TRUE(is_cacheline_aligned(t.data())) << "numel=" << n;
  }
  Tensor copied = Tensor({5}, {1, 2, 3, 4, 5});
  EXPECT_TRUE(is_cacheline_aligned(copied.data()));
  const Tensor reshaped = copied.reshaped({5, 1});
  EXPECT_TRUE(is_cacheline_aligned(reshaped.data()));
  static_assert(kCacheLineBytes % (4 * sizeof(float)) == 0,
                "cache line must hold whole 128-bit vectors");
}

TEST(Alignment, FusionBufferStorageIsCacheLineAligned) {
  // The persistent fusion scratch packs gradient buckets for the allreduce
  // pack/unpack memcpy loops; it must share the numeric buffers' 64-byte
  // alignment, including across monotonic growth steps.
  hvd::FusionBuffer buffer;
  for (std::size_t elems : {1u, 17u, 1024u, 4099u}) {
    EXPECT_TRUE(is_cacheline_aligned(buffer.acquire(elems).data()))
        << "elems=" << elems;
  }
  EXPECT_TRUE(is_cacheline_aligned(buffer.data()));
}

// ---------------------------------------------------------------------------
// Threaded-vs-serial equivalence of the wired hot paths. Each case runs
// the kernel at 1 thread and at 4 threads and requires bit-identical
// output buffers (the GEMM tile schedule and all elementwise updates
// perform the same fp ops in the same per-element order regardless of the
// thread count).
// ---------------------------------------------------------------------------

TEST(ThreadedEquivalence, GemmMatchesSerialBitExact) {
  Rng rng(31);
  // The PR 2 golden edge-tile shapes: straddle MR/NR/MC/KC boundaries.
  const std::size_t ms[] = {1, kGemmMR - 1, kGemmMR + 1, kGemmMC + 5};
  const std::size_t ns[] = {1, kGemmNR - 1, 3 * kGemmNR + 1};
  const std::size_t ks[] = {7, kGemmKC + 44};
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (std::size_t m : ms) {
        for (std::size_t n : ns) {
          for (std::size_t k : ks) {
            const Tensor a = ta ? random_tensor({k, m}, rng)
                                : random_tensor({m, k}, rng);
            const Tensor b = tb ? random_tensor({n, k}, rng)
                                : random_tensor({k, n}, rng);
            Epilogue ep;
            ep.op = EpilogueOp::kRelu;
            Tensor serial, threaded;
            {
              ThreadCountGuard guard(1);
              serial = gemm(ta, tb, a, b, ep);
            }
            {
              ThreadCountGuard guard(4);
              threaded = gemm(ta, tb, a, b, ep);
            }
            ASSERT_EQ(serial.shape(), threaded.shape());
            ASSERT_EQ(0, std::memcmp(serial.data(), threaded.data(),
                                     serial.numel() * sizeof(float)))
                << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
                << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(ThreadedEquivalence, Conv1dForwardBackwardMatchSerialBitExact) {
  Rng rng(37);
  const Tensor x = random_tensor({3, 257, 4}, rng);
  const Tensor w = random_tensor({9, 4, 16}, rng);
  const Tensor b = random_tensor({16}, rng);
  Tensor y1, y4;
  Tensor dx1(x.shape()), dw1(w.shape()), db1(b.shape());
  Tensor dx4(x.shape()), dw4(w.shape()), db4(b.shape());
  {
    ThreadCountGuard guard(1);
    Conv1dWorkspace ws;
    y1 = conv1d_forward(x, w, b, 2, &ws, EpilogueOp::kRelu);
    const Tensor dy(y1.shape(), 1.0f);
    conv1d_backward(x, w, dy, 2, dx1, dw1, db1, &ws);
  }
  {
    ThreadCountGuard guard(4);
    Conv1dWorkspace ws;
    y4 = conv1d_forward(x, w, b, 2, &ws, EpilogueOp::kRelu);
    const Tensor dy(y4.shape(), 1.0f);
    conv1d_backward(x, w, dy, 2, dx4, dw4, db4, &ws);
  }
  expect_bit_identical(y4, y1, "conv1d forward");
  expect_bit_identical(dx4, dx1, "conv1d dx");
  expect_bit_identical(dw4, dw1, "conv1d dw");
  expect_bit_identical(db4, db1, "conv1d dbias");
}

TEST(ThreadedEquivalence, InplaceOpsMatchSerialBitExact) {
  Rng rng(41);
  const Tensor x = random_tensor({97, 193}, rng);
  for (auto* op : {&relu_inplace, &sigmoid_inplace, &tanh_inplace,
                   &softmax_rows_inplace}) {
    Tensor serial = x, threaded = x;
    {
      ThreadCountGuard guard(1);
      (*op)(serial);
    }
    {
      ThreadCountGuard guard(4);
      (*op)(threaded);
    }
    expect_bit_identical(threaded, serial, "inplace op");
  }
}

TEST(ThreadedEquivalence, OptimizersMatchSerialBitExact) {
  for (const char* name : {"sgd", "adam", "rmsprop"}) {
    Rng rng(43);
    Tensor w_serial = random_tensor({123, 77}, rng);
    Tensor w_threaded = w_serial;
    Tensor g0 = random_tensor({123, 77}, rng);
    Tensor g1 = random_tensor({123, 77}, rng);
    {
      ThreadCountGuard guard(1);
      auto opt = nn::make_optimizer(name, 0.01);
      for (Tensor* g : {&g0, &g1}) opt->apply({&w_serial}, {g});
    }
    {
      ThreadCountGuard guard(4);
      auto opt = nn::make_optimizer(name, 0.01);
      for (Tensor* g : {&g0, &g1}) opt->apply({&w_threaded}, {g});
    }
    expect_bit_identical(w_threaded, w_serial, name);
  }
}

// ---------------------------------------------------------------------------
// read_csv_parallel: exact frame equality with the chunked reader
// ---------------------------------------------------------------------------

std::string temp_csv_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ParallelCsv, ExactlyFrameEqualToChunkedReader) {
  const std::string path = temp_csv_path("test_parallel_eq.csv");
  candle::io::write_synthetic_csv(path, {200, 133, false}, 1234);
  const candle::io::DataFrame chunked = candle::io::read_csv_chunked(path);
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadCountGuard guard(threads);
    candle::io::CsvReadStats stats;
    const candle::io::DataFrame par =
        candle::io::read_csv_parallel(path, &stats);
    ASSERT_EQ(chunked.rows, par.rows) << threads;
    ASSERT_EQ(chunked.cols, par.cols) << threads;
    ASSERT_EQ(0, std::memcmp(chunked.data.data(), par.data.data(),
                             chunked.data.size() * sizeof(float)))
        << "threads=" << threads;
    EXPECT_EQ(par.rows, stats.rows);
    EXPECT_EQ(par.cols, stats.cols);
    EXPECT_EQ(0u, stats.piece_allocs);
  }
  std::filesystem::remove(path);
}

TEST(ParallelCsv, SmallBlocksManyThreadsStillExact) {
  // Blocks far smaller than the file force many phase-1 blocks whose
  // newline lists must concatenate back in file order.
  ThreadCountGuard guard(4);
  const std::string path = temp_csv_path("test_parallel_blocks.csv");
  candle::io::write_synthetic_csv(path, {500, 23, false}, 99);
  const candle::io::DataFrame chunked = candle::io::read_csv_chunked(path);
  candle::io::CsvReadStats stats;
  const candle::io::DataFrame par =
      candle::io::read_csv_parallel(path, &stats, 4096);
  ASSERT_EQ(chunked.rows, par.rows);
  ASSERT_EQ(chunked.cols, par.cols);
  ASSERT_EQ(0, std::memcmp(chunked.data.data(), par.data.data(),
                           chunked.data.size() * sizeof(float)));
  EXPECT_GT(stats.chunks, 1u);
  std::filesystem::remove(path);
}

TEST(ParallelCsv, HandlesCrlfBlankLinesAndMissingFinalNewline) {
  ThreadCountGuard guard(4);
  const std::string path = temp_csv_path("test_parallel_quirks.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "1,2,3\r\n"
        << "\n"
        << "4,5,6\n"
        << "\r\n"
        << "7.5,-8e2,9";  // no trailing newline
  }
  const candle::io::DataFrame chunked = candle::io::read_csv_chunked(path);
  const candle::io::DataFrame par = candle::io::read_csv_parallel(path);
  ASSERT_EQ(3u, par.rows);
  ASSERT_EQ(3u, par.cols);
  ASSERT_EQ(chunked.rows, par.rows);
  ASSERT_EQ(0, std::memcmp(chunked.data.data(), par.data.data(),
                           chunked.data.size() * sizeof(float)));
  EXPECT_FLOAT_EQ(7.5f, par.at(2, 0));
  EXPECT_FLOAT_EQ(-800.0f, par.at(2, 1));
  std::filesystem::remove(path);
}

TEST(ParallelCsv, RaggedRowThrowsIoError) {
  ThreadCountGuard guard(4);
  const std::string path = temp_csv_path("test_parallel_ragged.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "1,2,3\n1,2\n1,2,3\n";
  }
  EXPECT_THROW((void)candle::io::read_csv_parallel(path), IoError);
  std::filesystem::remove(path);
}

TEST(ParallelCsv, DispatchesThroughLoaderKind) {
  ThreadCountGuard guard(2);
  const std::string path = temp_csv_path("test_parallel_kind.csv");
  candle::io::write_synthetic_csv(path, {32, 8, false}, 5);
  const candle::io::DataFrame direct = candle::io::read_csv_parallel(path);
  const candle::io::DataFrame via_kind =
      candle::io::read_csv(path, candle::io::LoaderKind::kParallel);
  ASSERT_EQ(direct.rows, via_kind.rows);
  ASSERT_EQ(0, std::memcmp(direct.data.data(), via_kind.data.data(),
                           direct.data.size() * sizeof(float)));
  EXPECT_FALSE(
      candle::io::loader_name(candle::io::LoaderKind::kParallel).empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace candle
