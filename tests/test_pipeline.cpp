// Tests for the input pipeline PR: the mmap'ed binary frame cache
// (io/mapped_frame + the v2 fingerprinted cache format), per-rank sharded
// cache loads, the parallel non-allocating gather/take overloads, the
// double-buffered BatchPipeline with its bit-exact prefetch contract in
// Model::fit, the simulator's hidden-input credit, and the runner's
// cached/sharded/prefetched end-to-end path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "candle/models.h"
#include "candle/runner.h"
#include "comm/communicator.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "hvd/broadcast.h"
#include "hvd/context.h"
#include "hvd/distributed_optimizer.h"
#include "hvd/fusion.h"
#include "io/binary_cache.h"
#include "io/csv_reader.h"
#include "io/mapped_frame.h"
#include "io/synthetic.h"
#include "nn/batch_pipeline.h"
#include "nn/callbacks.h"
#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "sim/calibration.h"
#include "sim/machine.h"
#include "sim/run_sim.h"
#include "trace/timeline.h"

namespace candle {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("candle_pipeline_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream out(path(name), std::ios::binary);
    out << content;
  }

  std::filesystem::path dir_;
};

using MappedFrameTest = TempDir;
using CacheFingerprintTest = TempDir;
using ShardedReadTest = TempDir;
using RunnerPipelineTest = TempDir;

/// Restores the ambient pool width when a test scope ends.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n)
      : saved_(parallel::num_threads()) {
    parallel::set_num_threads(n);
  }
  ~ThreadCountGuard() { parallel::set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  std::size_t saved_;
};

void expect_frames_equal(const io::DataFrame& a, const io::DataFrame& b) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  ASSERT_EQ(a.data.size(), b.data.size());
  ASSERT_EQ(0, std::memcmp(a.data.data(), b.data.data(),
                           a.data.size() * sizeof(float)));
}

void expect_tensors_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(0,
            std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)));
}

// ---------------------------------------------------------------------------
// MappedFrame: zero-copy reads of the v2 cache
// ---------------------------------------------------------------------------

TEST_F(MappedFrameTest, MatchesHeapLoadAndIsAligned) {
  io::write_synthetic_csv(path("m.csv"), {33, 9, false}, 11);
  const io::DataFrame parsed = io::read_csv_cached(path("m.csv"));
  const std::string cache = io::cache_path_for(path("m.csv"));
  const io::DataFrame heap = io::load_frame(cache);
  expect_frames_equal(parsed, heap);

  const io::MappedFrame mapped(cache);
  ASSERT_EQ(mapped.rows(), heap.rows);
  ASSERT_EQ(mapped.cols(), heap.cols);
  EXPECT_EQ(mapped.payload_bytes(), heap.data.size() * sizeof(float));
  // The 64-byte payload offset makes the mapped payload as aligned as a
  // Tensor allocation (mmap returns page-aligned memory).
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mapped.payload()) % 64, 0u);
  for (std::size_t r = 0; r < mapped.rows(); ++r) {
    const std::span<const float> row = mapped.row(r);
    ASSERT_EQ(row.size(), mapped.cols());
    ASSERT_EQ(0, std::memcmp(row.data(), heap.data.data() + r * heap.cols,
                             heap.cols * sizeof(float)))
        << "row " << r;
  }
  expect_frames_equal(mapped.to_frame(), heap);
  EXPECT_THROW((void)mapped.row(mapped.rows()), InvalidArgument);
}

TEST_F(MappedFrameTest, CorruptionAndTruncationThrow) {
  EXPECT_THROW(io::MappedFrame(path("missing.bin")), IoError);

  // Shorter than one header.
  write_file("short.bin", "CFR2 garbage");
  EXPECT_THROW(io::MappedFrame(path("short.bin")), IoError);

  // Old v1 magic, plausible length.
  std::string v1(256, '\0');
  v1.replace(0, 4, "CFR1");
  write_file("v1.bin", v1);
  EXPECT_THROW(io::MappedFrame(path("v1.bin")), IoError);
  EXPECT_THROW((void)io::load_frame(path("v1.bin")), IoError);

  // A valid cache truncated mid-payload: the mapped reader must reject it
  // up front (the heap loader detects the same via a short read).
  io::write_synthetic_csv(path("t.csv"), {20, 6, false}, 1);
  (void)io::read_csv_cached(path("t.csv"));
  const std::string cache = io::cache_path_for(path("t.csv"));
  const auto full = std::filesystem::file_size(cache);
  std::filesystem::resize_file(cache, full - 5);
  EXPECT_THROW((void)io::MappedFrame{cache}, IoError);
  EXPECT_THROW((void)io::load_frame(cache), IoError);
  EXPECT_THROW((void)io::load_frame_rows(cache, {0}), IoError);
}

TEST_F(MappedFrameTest, LoadFrameRowsCopiesSubsetsAndCountsTouchedBytes) {
  io::write_synthetic_csv(path("r.csv"), {25, 8, false}, 3);
  const io::DataFrame full = io::read_csv_cached(path("r.csv"));
  const std::string cache = io::cache_path_for(path("r.csv"));

  // Any order, repeats allowed.
  const std::vector<std::size_t> rows{24, 0, 7, 7, 13};
  io::CsvReadStats stats;
  const io::DataFrame picked = io::load_frame_rows(cache, rows, &stats);
  ASSERT_EQ(picked.rows, rows.size());
  ASSERT_EQ(picked.cols, full.cols);
  for (std::size_t i = 0; i < rows.size(); ++i)
    ASSERT_EQ(0, std::memcmp(picked.data.data() + i * picked.cols,
                             full.data.data() + rows[i] * full.cols,
                             full.cols * sizeof(float)))
        << "picked row " << i;
  EXPECT_EQ(stats.rows, rows.size());
  EXPECT_EQ(stats.bytes, io::kFrameCachePayloadOffset +
                             rows.size() * full.cols * sizeof(float));
  EXPECT_LT(stats.bytes, std::filesystem::file_size(cache));
  EXPECT_EQ(stats.chunks, 0u);  // no parsing happened

  EXPECT_THROW((void)io::load_frame_rows(cache, {25}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Cache v2: content fingerprint + old-format rejection
// ---------------------------------------------------------------------------

TEST_F(CacheFingerprintTest, OldMagicV1CacheIsMissAndRebuilt) {
  io::write_synthetic_csv(path("v.csv"), {10, 4, false}, 2);
  const std::string cache = io::cache_path_for(path("v.csv"));
  std::string v1(256, '\0');
  v1.replace(0, 4, "CFR1");
  write_file("v.csv.bin", v1);
  EXPECT_FALSE(io::is_cached_frame(cache));

  io::CsvReadStats miss;
  const io::DataFrame df =
      io::read_csv_cached(path("v.csv"), io::LoaderKind::kChunked, &miss);
  EXPECT_GT(miss.chunks, 0u);  // the v1 image did not count as a hit
  EXPECT_EQ(df.rows, 10u);
  EXPECT_TRUE(io::is_cached_frame(cache));  // rebuilt as v2

  io::CsvReadStats hit;
  (void)io::read_csv_cached(path("v.csv"), io::LoaderKind::kChunked, &hit);
  EXPECT_EQ(hit.chunks, 0u);
}

TEST_F(CacheFingerprintTest, SameSizeContentChangeInvalidatesCache) {
  write_file("c.csv", "1,2\n3,4\n");
  io::CsvReadStats s0;
  (void)io::read_csv_cached(path("c.csv"), io::LoaderKind::kChunked, &s0);
  EXPECT_GT(s0.chunks, 0u);

  // Rewrite with identical byte length and restore the mtime: only the
  // content hash can catch this change.
  const auto mtime = std::filesystem::last_write_time(path("c.csv"));
  write_file("c.csv", "5,6\n7,8\n");
  std::filesystem::last_write_time(path("c.csv"), mtime);

  io::CsvReadStats s1;
  const io::DataFrame df =
      io::read_csv_cached(path("c.csv"), io::LoaderKind::kChunked, &s1);
  EXPECT_GT(s1.chunks, 0u) << "stale cache served despite content change";
  EXPECT_FLOAT_EQ(df.at(0, 0), 5.0f);
}

TEST_F(CacheFingerprintTest, RewritingIdenticalContentStaysWarm) {
  io::write_synthetic_csv(path("w.csv"), {12, 5, false}, 4);
  (void)io::read_csv_cached(path("w.csv"));
  // The benchmark harness regenerates its CSVs every run; identical bytes
  // with a new mtime must still hit.
  io::write_synthetic_csv(path("w.csv"), {12, 5, false}, 4);
  io::CsvReadStats stats;
  (void)io::read_csv_cached(path("w.csv"), io::LoaderKind::kChunked, &stats);
  EXPECT_EQ(stats.chunks, 0u);
}

TEST_F(CacheFingerprintTest, FingerprintMissingFileThrows) {
  EXPECT_THROW((void)io::fingerprint_source(path("missing.csv")), IoError);
}

// ---------------------------------------------------------------------------
// Sharded cached reads: rank r of P touches ~1/P of the payload
// ---------------------------------------------------------------------------

TEST_F(ShardedReadTest, ShardsEqualGatherOfFullFrameColdAndWarm) {
  io::write_synthetic_csv(path("s.csv"), {42, 7, false}, 9);
  const io::DataFrame full = io::read_csv_chunked(path("s.csv"));
  const std::string cache = io::cache_path_for(path("s.csv"));

  for (std::size_t world : {1u, 2u, 4u}) {
    SCOPED_TRACE("world=" + std::to_string(world));
    const std::size_t shard = full.rows / world;
    for (int pass = 0; pass < 2; ++pass) {  // pass 0 cold, pass 1 warm
      if (pass == 0) std::filesystem::remove(cache);
      for (std::size_t rank = 0; rank < world; ++rank) {
        io::CsvReadStats stats;
        const io::DataFrame mine = io::read_csv_cached_sharded(
            path("s.csv"), rank, world, io::LoaderKind::kChunked, &stats);
        ASSERT_EQ(mine.rows, shard);
        ASSERT_EQ(mine.cols, full.cols);
        for (std::size_t i = 0; i < shard; ++i)
          ASSERT_EQ(0,
                    std::memcmp(mine.data.data() + i * mine.cols,
                                full.data.data() +
                                    (i * world + rank) * full.cols,
                                full.cols * sizeof(float)))
              << "pass " << pass << " rank " << rank << " row " << i;
        EXPECT_EQ(stats.rows, shard);
        if (pass == 1) {
          // Warm: no parsing, and bytes touched scale ~1/world.
          EXPECT_EQ(stats.chunks, 0u);
          EXPECT_EQ(stats.bytes,
                    io::kFrameCachePayloadOffset +
                        shard * full.cols * sizeof(float));
        }
      }
    }
  }

  EXPECT_THROW((void)io::read_csv_cached_sharded(path("s.csv"), 2, 2),
               InvalidArgument);
  EXPECT_THROW((void)io::read_csv_cached_sharded(path("s.csv"), 0, 0),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Non-allocating gather/take overloads (parallel, bit-identical)
// ---------------------------------------------------------------------------

TEST(GatherDest, MatchesReferenceAcrossThreadCounts) {
  Rng rng(4);
  Tensor t2({37, 19});
  for (float& v : t2.values()) v = static_cast<float>(rng.normal());
  Tensor t3({21, 5, 3});
  for (float& v : t3.values()) v = static_cast<float>(rng.normal());

  std::vector<std::size_t> idx{0, 36, 5, 5, 17, 2, 36, 11};
  // Reference computed with a plain scalar loop, independent of the
  // implementation under test.
  Tensor ref2({idx.size(), 19});
  for (std::size_t i = 0; i < idx.size(); ++i)
    for (std::size_t j = 0; j < 19; ++j)
      ref2[i * 19 + j] = t2[idx[i] * 19 + j];
  Tensor ref3({9, 5, 3});
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 15; ++j)
      ref3[i * 15 + j] = t3[(i + 4) * 15 + j];

  for (std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadCountGuard guard(threads);
    Tensor out2({idx.size(), 19});
    nn::gather_rows(t2, idx, out2);
    expect_tensors_equal(out2, ref2);
    expect_tensors_equal(nn::gather_rows(t2, idx), ref2);

    Tensor out3({9, 5, 3});
    nn::take_rows(t3, 4, 9, out3);
    expect_tensors_equal(out3, ref3);
    expect_tensors_equal(nn::take_rows(t3, 4, 9), ref3);
  }
}

TEST(GatherDest, ShapeAndBoundsViolationsThrow) {
  const Tensor t({10, 4});
  Tensor wrong({3, 5});
  const std::vector<std::size_t> idx{1, 2, 3};
  EXPECT_THROW(nn::gather_rows(t, idx, wrong), InvalidArgument);
  EXPECT_THROW(nn::take_rows(t, 0, 3, wrong), InvalidArgument);
  Tensor out({3, 4});
  const std::vector<std::size_t> oob{1, 10, 3};
  EXPECT_THROW(nn::gather_rows(t, oob, out), InvalidArgument);
  EXPECT_THROW(nn::take_rows(t, 8, 3, out), InvalidArgument);
}

// ---------------------------------------------------------------------------
// BatchPipeline mechanics
// ---------------------------------------------------------------------------

nn::Dataset make_toy_data(std::size_t n, std::size_t features,
                          std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({n, features});
  for (float& v : x.values()) v = static_cast<float>(rng.normal());
  std::vector<std::size_t> labels(n);
  for (auto& l : labels) l = rng.uniform_index(classes);
  return nn::Dataset{std::move(x), nn::one_hot(labels, classes)};
}

TEST(BatchPipelineTest, BatchesPerEpochBoundaries) {
  using nn::BatchPipeline;
  EXPECT_EQ(BatchPipeline::batches_per_epoch(10, 4, false), 3u);
  EXPECT_EQ(BatchPipeline::batches_per_epoch(10, 4, true), 2u);
  EXPECT_EQ(BatchPipeline::batches_per_epoch(8, 4, false), 2u);
  EXPECT_EQ(BatchPipeline::batches_per_epoch(8, 4, true), 2u);
  EXPECT_EQ(BatchPipeline::batches_per_epoch(3, 4, false), 1u);
  EXPECT_EQ(BatchPipeline::batches_per_epoch(3, 4, true), 0u);
  EXPECT_EQ(BatchPipeline::batches_per_epoch(1, 1, false), 1u);
  EXPECT_THROW((void)BatchPipeline::batches_per_epoch(8, 0, false),
               InvalidArgument);
}

TEST(BatchPipelineTest, SequentialEpochMatchesTakeRowsAndReusesSlots) {
  const nn::Dataset data = make_toy_data(12, 6, 3, 21);
  nn::PipelineOptions options;
  options.batch_size = 4;
  nn::BatchPipeline pipeline(data, options);

  std::set<const float*> slot_storage;
  for (int epoch = 0; epoch < 3; ++epoch) {
    pipeline.start_epoch({});
    std::size_t start = 0;
    std::size_t batches = 0;
    while (const nn::StagedBatch* batch = pipeline.acquire()) {
      expect_tensors_equal(batch->x, nn::take_rows(data.x, start, 4));
      expect_tensors_equal(batch->y, nn::take_rows(data.y, start, 4));
      slot_storage.insert(batch->x.data());
      start += 4;
      ++batches;
    }
    EXPECT_EQ(batches, 3u);
  }
  // Double buffering with zero steady-state allocations: every full-size
  // batch across all epochs lives in one of exactly two reusable slots.
  EXPECT_EQ(slot_storage.size(), 2u);
}

TEST(BatchPipelineTest, ShuffledEpochMatchesGatherRows) {
  const nn::Dataset data = make_toy_data(17, 5, 2, 8);
  nn::PipelineOptions options;
  options.batch_size = 5;
  nn::BatchPipeline pipeline(data, options);

  Rng rng(99);
  std::vector<std::size_t> order = nn::shuffled_index(17, rng);
  pipeline.start_epoch(order);
  std::size_t start = 0;
  while (const nn::StagedBatch* batch = pipeline.acquire()) {
    const std::size_t count = std::min<std::size_t>(5, 17 - start);
    const std::vector<std::size_t> idx(order.begin() + start,
                                       order.begin() + start + count);
    expect_tensors_equal(batch->x, nn::gather_rows(data.x, idx));
    expect_tensors_equal(batch->y, nn::gather_rows(data.y, idx));
    start += count;
  }
  EXPECT_EQ(start, 17u);
}

TEST(BatchPipelineTest, ProtocolViolationsThrow) {
  const nn::Dataset data = make_toy_data(12, 4, 2, 3);
  nn::PipelineOptions options;
  options.batch_size = 4;
  nn::BatchPipeline pipeline(data, options);

  EXPECT_THROW((void)pipeline.acquire(), InvalidArgument);
  pipeline.start_epoch({});
  ASSERT_NE(pipeline.acquire(), nullptr);
  // Restarting mid-epoch would corrupt the slot hand-off.
  EXPECT_THROW(pipeline.start_epoch({}), InvalidArgument);
  while (pipeline.acquire() != nullptr) {
  }
  pipeline.start_epoch({});  // fully drained: fine
  while (pipeline.acquire() != nullptr) {
  }

  nn::Dataset empty;
  EXPECT_THROW(nn::BatchPipeline(empty, options), InvalidArgument);
  std::vector<std::size_t> bad_order{1, 2, 3};
  EXPECT_THROW(pipeline.start_epoch(bad_order), InvalidArgument);
}

TEST(BatchPipelineTest, TimelineRecordsOneProduceAndStallPerBatch) {
  const nn::Dataset data = make_toy_data(20, 4, 2, 6);
  trace::Timeline timeline;
  Stopwatch clock;
  nn::PipelineOptions options;
  options.batch_size = 8;
  options.timeline = &timeline;
  options.clock = &clock;
  options.rank = 3;
  nn::BatchPipeline pipeline(data, options);
  for (int epoch = 0; epoch < 2; ++epoch) {
    pipeline.start_epoch({});
    while (pipeline.acquire() != nullptr) {
    }
  }
  // 3 batches/epoch x 2 epochs, all on the requested lane.
  EXPECT_EQ(timeline.count_events(trace::kPipelineProduce, 3), 6u);
  EXPECT_EQ(timeline.count_events(trace::kPipelineStall, 3), 6u);
  EXPECT_EQ(timeline.count_events(trace::kPipelineProduce, 0), 0u);
}

TEST(BatchPipelineStress, DestroyMidEpochJoinsCleanly) {
  // TSan-targeted: abandon epochs at every consumption depth, with the
  // producer possibly staging, parked, or blocked on a full buffer. The
  // destructor must shut the producer down and join without a hand-off
  // partner.
  const nn::Dataset data = make_toy_data(64, 8, 2, 5);
  Rng rng(31);
  for (int i = 0; i < 24; ++i) {
    nn::PipelineOptions options;
    options.batch_size = 8;
    nn::BatchPipeline pipeline(data, options);
    pipeline.start_epoch(nn::shuffled_index(64, rng));
    for (int k = 0; k < i % 8; ++k) ASSERT_NE(pipeline.acquire(), nullptr);
    // Destructor runs here, mid-epoch.
  }
}

// ---------------------------------------------------------------------------
// Bit-exact prefetched vs synchronous fit (the correctness bar)
// ---------------------------------------------------------------------------

struct FitOutcome {
  std::vector<std::vector<float>> weights;  // per-rank flattened params
  std::vector<float> losses;                // rank-0 per-epoch losses
  std::size_t epochs_run = 0;
};

FitOutcome run_benchmark_fit(BenchmarkId id, std::size_t ranks, bool prefetch,
                             std::size_t epochs = 2,
                             bool early_stop = false) {
  const ScaledGeometry geometry = scaled_geometry(id, 0.002);
  const BenchmarkData data = make_benchmark_data(id, geometry, /*seed=*/11);
  const std::size_t n = std::min<std::size_t>(64, data.train.size());
  const nn::Dataset train{nn::take_rows(data.train.x, 0, n),
                          nn::take_rows(data.train.y, 0, n)};
  FitOutcome out;
  out.weights.resize(ranks);
  comm::World::run(ranks, [&](comm::Communicator& c) {
    hvd::Context ctx(c);
    nn::Model model = build_model(id, geometry);
    hvd::FusionOptions fusion;
    fusion.threshold_bytes = 4 * 1024;
    auto opt = std::make_unique<hvd::DistributedOptimizer>(
        nn::make_optimizer(benchmark_optimizer(id), 0.01), ctx, fusion);
    model.compile({geometry.features}, std::move(opt),
                  nn::make_loss(benchmark_loss(id)),
                  /*seed=*/5 + c.rank());  // rank-distinct init

    hvd::BroadcastGlobalVariablesHook broadcast(ctx, 0);
    nn::EarlyStopping stopping(/*patience=*/0, /*min_delta=*/1e9);
    std::vector<nn::Callback*> callbacks{&broadcast};
    if (early_stop) callbacks.push_back(&stopping);

    nn::FitOptions fit;
    fit.epochs = epochs;
    fit.batch_size = 16;
    fit.shuffle = true;  // exercises the fit_rng_ draw-order contract
    fit.classification = benchmark_is_classification(id);
    fit.prefetch = prefetch;
    const nn::History history = model.fit(train, fit, callbacks);

    std::vector<float> flat;
    for (Tensor* p : model.parameters())
      flat.insert(flat.end(), p->data(), p->data() + p->numel());
    out.weights[c.rank()] = std::move(flat);
    if (c.rank() == 0) {
      for (const auto& e : history.epochs) out.losses.push_back(e.loss);
      out.epochs_run = history.epochs.size();
    }
  });
  return out;
}

void expect_bit_identical(const FitOutcome& a, const FitOutcome& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t r = 0; r < a.weights.size(); ++r) {
    ASSERT_EQ(a.weights[r].size(), b.weights[r].size());
    ASSERT_EQ(0, std::memcmp(a.weights[r].data(), b.weights[r].data(),
                             a.weights[r].size() * sizeof(float)))
        << "rank " << r << ": prefetched weights differ from synchronous";
  }
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t e = 0; e < a.losses.size(); ++e)
    ASSERT_EQ(a.losses[e], b.losses[e]) << "epoch " << e;
}

TEST(PrefetchEquivalence, BitExactOnMiniBenchmarksAcrossRanksAndThreads) {
  for (BenchmarkId id : {BenchmarkId::kNT3, BenchmarkId::kP1B1}) {
    for (std::size_t ranks : {1u, 2u, 4u}) {
      for (std::size_t threads : {1u, 4u}) {
        SCOPED_TRACE(std::string(benchmark_name(id)) + " ranks=" +
                     std::to_string(ranks) + " threads=" +
                     std::to_string(threads));
        ThreadCountGuard guard(threads);
        const FitOutcome sync = run_benchmark_fit(id, ranks, false);
        const FitOutcome pre = run_benchmark_fit(id, ranks, true);
        expect_bit_identical(sync, pre);
      }
    }
  }
}

TEST(PrefetchEquivalence, EarlyStopStaysBitExact) {
  // EarlyStopping ends fit() between epochs; the shuffle order must keep
  // being drawn from fit_rng_ on the compute thread so the producer can
  // never desynchronize the RNG stream around the stop decision.
  const FitOutcome sync = run_benchmark_fit(BenchmarkId::kP1B1, 2, false,
                                            /*epochs=*/6,
                                            /*early_stop=*/true);
  const FitOutcome pre = run_benchmark_fit(BenchmarkId::kP1B1, 2, true,
                                           /*epochs=*/6,
                                           /*early_stop=*/true);
  EXPECT_LT(sync.epochs_run, 6u);  // the stop actually triggered
  EXPECT_EQ(sync.epochs_run, pre.epochs_run);
  expect_bit_identical(sync, pre);
}

TEST(PrefetchEquivalence, ValidationSplitAndDropRemainderMatch) {
  // Single-process: validation split + dropped tail + synthetic input
  // latency all flow through both paths identically.
  std::vector<float> reference;
  for (const bool prefetch : {false, true}) {
    const nn::Dataset data = make_toy_data(50, 12, 3, 77);
    nn::Model model;
    model.add<nn::Dense>(16, nn::Act::kRelu);
    model.add<nn::Dense>(3, nn::Act::kSoftmax);
    model.compile({12}, nn::make_optimizer("sgd", 0.05),
                  nn::make_loss("categorical_crossentropy"), /*seed=*/9);
    nn::FitOptions fit;
    fit.epochs = 3;
    fit.batch_size = 16;
    fit.validation_fraction = 0.25;
    fit.drop_remainder = true;
    fit.prefetch = prefetch;
    fit.sim_input_latency_s = 1e-4;
    const nn::History history = model.fit(data, fit);
    std::vector<float> flat;
    for (Tensor* p : model.parameters())
      flat.insert(flat.end(), p->data(), p->data() + p->numel());
    for (const auto& e : history.epochs) {
      flat.push_back(e.loss);
      flat.push_back(e.val_loss);
      flat.push_back(static_cast<float>(e.batch_steps));
    }
    if (!prefetch) {
      reference = flat;
    } else {
      ASSERT_EQ(reference.size(), flat.size());
      ASSERT_EQ(0, std::memcmp(reference.data(), flat.data(),
                               flat.size() * sizeof(float)));
    }
  }
}

TEST(PrefetchEquivalence, FitWiresTimelineEventsPerStep) {
  const nn::Dataset data = make_toy_data(50, 8, 2, 13);
  nn::Model model;
  model.add<nn::Dense>(8, nn::Act::kRelu);
  model.add<nn::Dense>(2, nn::Act::kSoftmax);
  model.compile({8}, nn::make_optimizer("sgd", 0.01),
                nn::make_loss("categorical_crossentropy"), /*seed=*/4);
  trace::Timeline timeline;
  Stopwatch clock;
  nn::FitOptions fit;
  fit.epochs = 3;
  fit.batch_size = 16;
  fit.prefetch = true;
  fit.timeline = &timeline;
  fit.timeline_clock = &clock;
  fit.timeline_rank = 1;
  const nn::History history = model.fit(data, fit);
  std::size_t steps = 0;
  for (const auto& e : history.epochs) steps += e.batch_steps;
  EXPECT_EQ(steps, 12u);  // 4 batches x 3 epochs
  EXPECT_EQ(timeline.count_events(trace::kPipelineProduce, 1), steps);
  EXPECT_EQ(timeline.count_events(trace::kPipelineStall, 1), steps);
}

// ---------------------------------------------------------------------------
// Simulator: hidden-input credit mirrors the comm-overlap credit
// ---------------------------------------------------------------------------

TEST(SimInputPipeline, CreditsHiddenInputAgainstStepTime) {
  const sim::RunSimulator simulator(sim::Machine::summit(),
                                    sim::BenchmarkProfile::nt3());
  sim::RunPlan stall;
  stall.ranks = 48;
  stall.epochs_per_rank = 2;
  stall.input_stage_frac = 0.3;
  sim::RunPlan piped = stall;
  piped.pipeline_input = true;
  const sim::SimResult a = simulator.simulate(stall);
  const sim::SimResult b = simulator.simulate(piped);

  EXPECT_GT(a.phases.train_input, 0.0);
  EXPECT_DOUBLE_EQ(a.phases.train_input_hidden, 0.0);
  // Staging cost below one step of compute hides entirely.
  EXPECT_DOUBLE_EQ(b.phases.train_input, 0.0);
  // Hidden + exposed == the un-pipelined staging time; compute unchanged.
  EXPECT_NEAR(b.phases.train_input + b.phases.train_input_hidden,
              a.phases.train_input, 1e-9);
  EXPECT_DOUBLE_EQ(a.phases.train_compute, b.phases.train_compute);
  EXPECT_LT(b.phases.total(), a.phases.total());
  EXPECT_LT(b.time_per_epoch, a.time_per_epoch);

  // The credit is capped at one full step of compute: staging slower than
  // the model stays exposed for the remainder.
  sim::RunPlan slow = piped;
  slow.input_stage_frac = 1.5;
  const sim::SimResult c = simulator.simulate(slow);
  const double steps = static_cast<double>(c.steps_per_epoch) *
                       static_cast<double>(slow.epochs_per_rank);
  const double step_c = simulator.step_compute_seconds(
      simulator.profile().default_batch);
  EXPECT_NEAR(c.phases.train_input_hidden, steps * step_c, 1e-9);
  EXPECT_NEAR(c.phases.train_input, steps * 0.5 * step_c, 1e-9);
}

TEST(SimInputPipeline, DefaultFracKeepsExistingPlansBitIdentical) {
  const sim::RunSimulator simulator(sim::Machine::summit(),
                                    sim::BenchmarkProfile::nt3());
  sim::RunPlan base;
  base.ranks = 24;
  base.epochs_per_rank = 2;
  base.overlap_comm = true;
  sim::RunPlan with_pipeline = base;
  with_pipeline.pipeline_input = true;  // no staging cost -> no-op
  const sim::SimResult a = simulator.simulate(base);
  const sim::SimResult b = simulator.simulate(with_pipeline);
  EXPECT_DOUBLE_EQ(a.phases.total(), b.phases.total());
  EXPECT_DOUBLE_EQ(a.phases.train_input, 0.0);
  EXPECT_DOUBLE_EQ(b.phases.train_input, 0.0);
  EXPECT_DOUBLE_EQ(b.phases.train_input_hidden, 0.0);
  EXPECT_DOUBLE_EQ(a.time_per_epoch, b.time_per_epoch);
  EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_DOUBLE_EQ(a.energy_per_rank_j, b.energy_per_rank_j);
}

TEST(SimInputPipeline, TimelineShowsStallExposedAndProduceHidden) {
  const sim::RunSimulator simulator(sim::Machine::summit(),
                                    sim::BenchmarkProfile::nt3());
  sim::RunPlan plan;
  plan.ranks = 4;
  plan.epochs_per_rank = 2;
  plan.input_stage_frac = 0.4;
  plan.make_timeline = true;
  const sim::SimResult stalled = simulator.simulate(plan);
  ASSERT_NE(stalled.timeline, nullptr);
  EXPECT_EQ(stalled.timeline->count_events(trace::kPipelineStall, 0), 2u);
  EXPECT_EQ(stalled.timeline->count_events(trace::kPipelineProduce, 0), 0u);

  plan.pipeline_input = true;
  const sim::SimResult piped = simulator.simulate(plan);
  ASSERT_NE(piped.timeline, nullptr);
  EXPECT_EQ(piped.timeline->count_events(trace::kPipelineStall, 0), 0u);
  EXPECT_EQ(piped.timeline->count_events(trace::kPipelineProduce, 0), 2u);
  EXPECT_LT(piped.timeline->span_end(), stalled.timeline->span_end());
}

// ---------------------------------------------------------------------------
// Runner end to end: cached + sharded + prefetched == baseline
// ---------------------------------------------------------------------------

TEST_F(RunnerPipelineTest, CachedShardedPrefetchedRunMatchesBaseline) {
  RealRunConfig base;
  base.benchmark = BenchmarkId::kNT3;
  base.ranks = 2;
  base.total_epochs = 4;
  base.level = sim::ParallelLevel::kBatchStep;
  base.scale = 0.002;
  base.workdir = dir_.string();

  RealRunConfig piped = base;
  piped.cached_loads = true;
  piped.prefetch = true;

  const RealRunResult a = run_real(base);
  const RealRunResult b = run_real(piped);  // cold: parses + builds cache
  const RealRunResult c = run_real(piped);  // warm: mapped sharded read

  for (const RealRunResult* r : {&b, &c}) {
    EXPECT_EQ(a.final_loss, r->final_loss);
    EXPECT_EQ(a.final_accuracy, r->final_accuracy);
    EXPECT_EQ(a.test_accuracy, r->test_accuracy);
    ASSERT_EQ(a.history.epochs.size(), r->history.epochs.size());
    for (std::size_t e = 0; e < a.history.epochs.size(); ++e)
      EXPECT_EQ(a.history.epochs[e].loss, r->history.epochs[e].loss)
          << "epoch " << e;
  }
  // Cold run parsed; warm run read only its shard of the mapped cache.
  EXPECT_GT(b.load_stats.chunks, 0u);
  EXPECT_EQ(c.load_stats.chunks, 0u);
  EXPECT_LT(c.load_stats.bytes, a.load_stats.bytes);
  EXPECT_EQ(c.load_stats.rows, b.load_stats.rows);
}

}  // namespace
}  // namespace candle
