// Tests for src/power: curves, meters, energy integration.
#include <gtest/gtest.h>

#include "common/error.h"
#include "power/power.h"

namespace candle::power {
namespace {

TEST(PiecewisePower, WattsAtSegments) {
  PiecewisePower p;
  p.append(10.0, 50.0);   // [0, 10): 50 W
  p.append(5.0, 150.0);   // [10, 15): 150 W
  EXPECT_DOUBLE_EQ(p.watts_at(0.0), 50.0);
  EXPECT_DOUBLE_EQ(p.watts_at(9.999), 50.0);
  EXPECT_DOUBLE_EQ(p.watts_at(10.0), 150.0);
  EXPECT_DOUBLE_EQ(p.watts_at(14.9), 150.0);
  EXPECT_DOUBLE_EQ(p.watts_at(15.0), 0.0);  // past the end
  EXPECT_DOUBLE_EQ(p.watts_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(p.duration(), 15.0);
}

TEST(PiecewisePower, ExactEnergy) {
  PiecewisePower p;
  p.append(10.0, 50.0);
  p.append(5.0, 150.0);
  EXPECT_DOUBLE_EQ(p.energy_joules(), 10 * 50 + 5 * 150);
}

TEST(PiecewisePower, ZeroDurationSegmentsIgnored) {
  PiecewisePower p;
  p.append(0.0, 500.0);
  p.append(2.0, 100.0);
  EXPECT_EQ(p.segments(), 1u);
  EXPECT_DOUBLE_EQ(p.energy_joules(), 200.0);
}

TEST(PiecewisePower, RejectsNegatives) {
  PiecewisePower p;
  EXPECT_THROW(p.append(-1.0, 10.0), InvalidArgument);
  EXPECT_THROW(p.append(1.0, -10.0), InvalidArgument);
}

TEST(PowerMeter, SamplesAtRate) {
  PiecewisePower p;
  p.append(10.0, 100.0);
  const PowerTrace t1 = PowerMeter(1.0).sample(p);
  EXPECT_EQ(t1.samples.size(), 10u);
  const PowerTrace t2 = PowerMeter(2.0).sample(p);
  EXPECT_EQ(t2.samples.size(), 20u);
  EXPECT_DOUBLE_EQ(t2.interval_s, 0.5);
}

TEST(PowerMeter, ConstantCurveEnergyExact) {
  PiecewisePower p;
  p.append(60.0, 150.0);
  const PowerTrace t = nvidia_smi_meter().sample(p);
  EXPECT_DOUBLE_EQ(t.energy_joules(), 9000.0);
  EXPECT_DOUBLE_EQ(t.average_watts(), 150.0);
  EXPECT_DOUBLE_EQ(t.peak_watts(), 150.0);
}

TEST(PowerMeter, SamplingErrorBoundedOnPhasedCurve) {
  // A 1 Hz meter over multi-second phases lands within one sample interval
  // of truth — the same property nvidia-smi integration has.
  PiecewisePower p;
  p.append(30.0, 55.0);    // loading
  p.append(43.0, 42.0);    // broadcast wait
  p.append(20.0, 150.0);   // compute
  const PowerTrace t = nvidia_smi_meter().sample(p);
  const double true_e = p.energy_joules();
  EXPECT_NEAR(t.energy_joules(), true_e, 150.0);  // <= one sample * max W
}

TEST(PowerMeter, ShortPhaseCanBeMissedAtOneHz) {
  // A 0.4 s spike between samples is invisible at 1 Hz but visible at 10 Hz
  // — why the paper's 1 Hz traces show smooth phase plateaus.
  PiecewisePower p;
  p.append(0.3, 50.0);
  p.append(0.4, 300.0);
  p.append(2.3, 50.0);
  const PowerTrace slow = PowerMeter(1.0).sample(p);
  EXPECT_DOUBLE_EQ(slow.peak_watts(), 50.0);
  const PowerTrace fast = PowerMeter(10.0).sample(p);
  EXPECT_DOUBLE_EQ(fast.peak_watts(), 300.0);
}

TEST(PowerMeter, MeterPresets) {
  EXPECT_DOUBLE_EQ(nvidia_smi_meter().sample_hz(), 1.0);   // Summit, §3
  EXPECT_DOUBLE_EQ(polimer_meter().sample_hz(), 2.0);      // Theta, §3
}

TEST(PowerTrace, CsvDump) {
  PowerTrace t;
  t.interval_s = 1.0;
  t.samples = {{0.0, 42.0}, {1.0, 150.0}};
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("t_s,watts"), std::string::npos);
  EXPECT_NE(csv.find("1.000,150.00"), std::string::npos);
}

TEST(PowerTrace, EmptyTraceSafeDefaults) {
  PowerTrace t;
  EXPECT_DOUBLE_EQ(t.average_watts(), 0.0);
  EXPECT_DOUBLE_EQ(t.peak_watts(), 0.0);
  EXPECT_DOUBLE_EQ(t.energy_joules(), 0.0);
}

TEST(PowerMeter, RejectsBadRate) {
  EXPECT_THROW(PowerMeter(0.0), InvalidArgument);
}

}  // namespace
}  // namespace candle::power
