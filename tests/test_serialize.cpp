// Tests for nn/serialize (checkpointing) and nn/callbacks (early stopping,
// model checkpoint, lr warmup) — the paper's §7 fault-tolerance future work.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "io/synthetic.h"
#include "nn/callbacks.h"
#include "nn/model.h"
#include "nn/serialize.h"

namespace candle::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("candle_ser_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

Model make_model(std::uint64_t seed) {
  Model m;
  m.add<Dense>(8, Act::kRelu);
  m.add<Dense>(3, Act::kSoftmax);
  m.compile({5}, make_optimizer("sgd", 0.01),
            make_loss("categorical_crossentropy"), seed);
  return m;
}

TEST_F(SerializeTest, RoundTripRestoresExactWeights) {
  Model a = make_model(1);
  save_weights(a, path("w.ckpt"));
  Model b = make_model(2);  // different init
  load_weights(b, path("w.ckpt"));
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->numel(); ++j)
      ASSERT_FLOAT_EQ((*pa[i])[j], (*pb[i])[j]);
}

TEST_F(SerializeTest, RestoredModelPredictsIdentically) {
  Model a = make_model(3);
  Tensor x({4, 5}, 0.3f);
  const Tensor ya = a.predict(x);
  save_weights(a, path("w.ckpt"));
  Model b = make_model(4);
  load_weights(b, path("w.ckpt"));
  const Tensor yb = b.predict(x);
  for (std::size_t i = 0; i < ya.numel(); ++i)
    ASSERT_FLOAT_EQ(ya[i], yb[i]);
}

TEST_F(SerializeTest, IsCheckpointDetectsMagic) {
  Model a = make_model(1);
  save_weights(a, path("w.ckpt"));
  EXPECT_TRUE(is_checkpoint(path("w.ckpt")));
  std::ofstream(path("other.txt")) << "not a checkpoint at all";
  EXPECT_FALSE(is_checkpoint(path("other.txt")));
  EXPECT_FALSE(is_checkpoint(path("missing.ckpt")));
}

TEST_F(SerializeTest, ArchitectureMismatchRejected) {
  Model a = make_model(1);
  save_weights(a, path("w.ckpt"));
  Model other;
  other.add<Dense>(9, Act::kRelu);  // different width
  other.add<Dense>(3, Act::kSoftmax);
  other.compile({5}, make_optimizer("sgd", 0.01),
                make_loss("categorical_crossentropy"), 5);
  EXPECT_THROW(load_weights(other, path("w.ckpt")), IoError);
}

TEST_F(SerializeTest, TruncatedFileRejectedWithoutPartialUpdate) {
  Model a = make_model(1);
  save_weights(a, path("w.ckpt"));
  // Truncate the file in the middle of the payload.
  const auto full = std::filesystem::file_size(path("w.ckpt"));
  std::filesystem::resize_file(path("w.ckpt"), full / 2);
  Model b = make_model(6);
  std::vector<float> before;
  for (Tensor* p : b.parameters())
    before.insert(before.end(), p->data(), p->data() + p->numel());
  EXPECT_THROW(load_weights(b, path("w.ckpt")), IoError);
  // b's weights must be untouched (staged load).
  std::vector<float> after;
  for (Tensor* p : b.parameters())
    after.insert(after.end(), p->data(), p->data() + p->numel());
  EXPECT_EQ(before, after);
}

TEST_F(SerializeTest, CorruptPayloadFailsChecksum) {
  Model a = make_model(1);
  save_weights(a, path("w.ckpt"));
  // Flip a byte inside the payload (past the header).
  std::fstream f(path("w.ckpt"),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(64);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(64);
  byte = static_cast<char>(byte ^ 0x5A);
  f.write(&byte, 1);
  f.close();
  Model b = make_model(2);
  EXPECT_THROW(load_weights(b, path("w.ckpt")), IoError);
}

TEST_F(SerializeTest, UncompiledModelRejected) {
  Model m;
  m.add<Dense>(2);
  EXPECT_THROW(save_weights(m, path("x.ckpt")), InvalidArgument);
  EXPECT_THROW(load_weights(m, path("x.ckpt")), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Callbacks
// ---------------------------------------------------------------------------

Dataset easy_data() {
  io::ClassificationSpec spec;
  spec.samples = 120;
  spec.features = 6;
  spec.classes = 2;
  spec.informative = 6;
  spec.class_sep = 2.5;
  spec.noise = 0.5;
  spec.seed = 3;
  return io::make_classification(spec);
}

TEST(EarlyStoppingTest, StopsWhenLossPlateaus) {
  Dataset d = easy_data();
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.2),
            make_loss("categorical_crossentropy"), 1);
  EarlyStopping stopper(/*patience=*/2, /*min_delta=*/1e-3);
  FitOptions opt;
  opt.epochs = 200;
  opt.batch_size = 30;
  const History h = m.fit(d, opt, {&stopper});
  EXPECT_TRUE(stopper.should_stop());
  EXPECT_LT(h.epochs.size(), 200u);  // stopped early
  EXPECT_GT(h.epochs.size(), 3u);    // but not immediately
}

TEST(EarlyStoppingTest, DoesNotStopWhileImproving) {
  Dataset d = easy_data();
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.005),
            make_loss("categorical_crossentropy"), 1);
  EarlyStopping stopper(/*patience=*/5, /*min_delta=*/0.0);
  FitOptions opt;
  opt.epochs = 10;
  opt.batch_size = 30;
  const History h = m.fit(d, opt, {&stopper});
  EXPECT_EQ(h.epochs.size(), 10u);  // slow lr keeps improving slowly
}

TEST(ModelCheckpointTest, SavesEveryPeriod) {
  const auto ckpt =
      (std::filesystem::temp_directory_path() / "cb_test.ckpt").string();
  Dataset d = easy_data();
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.05),
            make_loss("categorical_crossentropy"), 1);
  ModelCheckpoint checkpoint(ckpt, /*period=*/3);
  FitOptions opt;
  opt.epochs = 7;
  opt.batch_size = 30;
  (void)m.fit(d, opt, {&checkpoint});
  EXPECT_EQ(checkpoint.saves(), 2u);  // epochs 3 and 6
  EXPECT_TRUE(is_checkpoint(ckpt));
  std::filesystem::remove(ckpt);
}

TEST(ModelCheckpointTest, SaveBestOnlySkipsWorseEpochs) {
  const auto ckpt =
      (std::filesystem::temp_directory_path() / "cb_best.ckpt").string();
  Dataset d = easy_data();
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.05),
            make_loss("categorical_crossentropy"), 1);
  ModelCheckpoint checkpoint(ckpt, 1, /*save_best_only=*/true);
  FitOptions opt;
  opt.epochs = 12;
  opt.batch_size = 30;
  (void)m.fit(d, opt, {&checkpoint});
  EXPECT_GE(checkpoint.saves(), 1u);
  EXPECT_LE(checkpoint.saves(), 12u);
  std::filesystem::remove(ckpt);
}

TEST(LearningRateWarmupTest, RampsLinearlyToTarget) {
  Dataset d = easy_data();
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.5),
            make_loss("categorical_crossentropy"), 1);
  LearningRateWarmup warmup(0.01, 0.05, /*warmup_epochs=*/4);

  /// Observes the lr at the end of each epoch (after warmup adjusted it).
  class LrProbe : public Callback {
   public:
    std::vector<double> rates;
    void on_epoch_end(Model& model, const EpochStats&) override {
      rates.push_back(model.optimizer().learning_rate());
    }
  };
  LrProbe probe;
  FitOptions opt;
  opt.epochs = 6;
  opt.batch_size = 30;
  (void)m.fit(d, opt, {&warmup, &probe});
  ASSERT_EQ(probe.rates.size(), 6u);
  EXPECT_NEAR(probe.rates[0], 0.02, 1e-9);  // 0.01 + (0.04)*1/4
  EXPECT_NEAR(probe.rates[1], 0.03, 1e-9);
  EXPECT_NEAR(probe.rates[3], 0.05, 1e-9);  // fully warmed
  EXPECT_NEAR(probe.rates[5], 0.05, 1e-9);  // stays at target
}

TEST(LrSchedules, StepDecayHalvesOnSchedule) {
  Dataset d = easy_data();
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.08),
            make_loss("categorical_crossentropy"), 1);
  StepLrDecay decay(0.08, 0.5, /*every=*/2);
  class LrProbe : public Callback {
   public:
    std::vector<double> rates;
    void on_epoch_end(Model& model, const EpochStats&) override {
      rates.push_back(model.optimizer().learning_rate());
    }
  } probe;
  FitOptions opt;
  opt.epochs = 6;
  opt.batch_size = 30;
  (void)m.fit(d, opt, {&decay, &probe});
  EXPECT_NEAR(probe.rates[0], 0.08, 1e-9);
  EXPECT_NEAR(probe.rates[2], 0.04, 1e-9);
  EXPECT_NEAR(probe.rates[4], 0.02, 1e-9);
}

TEST(LrSchedules, CosineDecayEndsAtFloor) {
  Dataset d = easy_data();
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.1),
            make_loss("categorical_crossentropy"), 1);
  CosineLrDecay decay(0.1, 0.001, /*total=*/8);
  class LrProbe : public Callback {
   public:
    std::vector<double> rates;
    void on_epoch_end(Model& model, const EpochStats&) override {
      rates.push_back(model.optimizer().learning_rate());
    }
  } probe;
  FitOptions opt;
  opt.epochs = 9;
  opt.batch_size = 30;
  (void)m.fit(d, opt, {&decay, &probe});
  EXPECT_NEAR(probe.rates[0], 0.1, 1e-9);  // cos(0) = 1
  for (std::size_t i = 1; i < probe.rates.size(); ++i)
    EXPECT_LE(probe.rates[i], probe.rates[i - 1] + 1e-12);
  EXPECT_NEAR(probe.rates[8], 0.001, 1e-9);
}

TEST(LrSchedules, InvalidConfigsThrow) {
  EXPECT_THROW(StepLrDecay(0.1, 1.5, 2), InvalidArgument);
  EXPECT_THROW(StepLrDecay(0.1, 0.5, 0), InvalidArgument);
  EXPECT_THROW(CosineLrDecay(0.001, 0.1, 5), InvalidArgument);
}

TEST(HistoryRecorderTest, CapturesAllEpochs) {
  Dataset d = easy_data();
  Model m;
  m.add<Dense>(2, Act::kSoftmax);
  m.compile({6}, make_optimizer("sgd", 0.05),
            make_loss("categorical_crossentropy"), 1);
  HistoryRecorder recorder;
  FitOptions opt;
  opt.epochs = 5;
  opt.batch_size = 30;
  (void)m.fit(d, opt, {&recorder});
  EXPECT_EQ(recorder.stats().size(), 5u);
  EXPECT_EQ(recorder.stats()[4].epoch, 4u);
}

}  // namespace
}  // namespace candle::nn
