// Tests for the inference serving layer (serve/): micro-batching
// scheduler, multi-model server, checkpoint-to-serving round trip, and
// the deterministic traffic load generator. The bit-identity tests pin
// the serving determinism contract — a served row equals Model::predict
// on that row regardless of which batch the scheduler assembled it into.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "candle/models.h"
#include "common/error.h"
#include "common/rng.h"
#include "nn/dataset.h"
#include "nn/model.h"
#include "nn/serialize.h"
#include "serve/loadgen.h"
#include "serve/micro_batcher.h"
#include "serve/server.h"

namespace candle::serve {
namespace {

using nn::Model;

constexpr std::size_t kIn = 12;
constexpr std::size_t kOut = 4;

/// Small MLP classifier used by most serving tests.
Model make_mlp(std::uint64_t seed) {
  Model m;
  m.add<nn::Dense>(16, nn::Act::kRelu);
  m.add<nn::Dense>(kOut, nn::Act::kSoftmax);
  m.compile({kIn}, nn::make_optimizer("sgd", 0.01),
            nn::make_loss("categorical_crossentropy"), seed);
  return m;
}

/// Same architecture, inference-only compile (identical weights per seed).
Model make_mlp_inference(std::uint64_t seed) {
  Model m;
  m.add<nn::Dense>(16, nn::Act::kRelu);
  m.add<nn::Dense>(kOut, nn::Act::kSoftmax);
  m.compile_for_inference({kIn}, seed);
  return m;
}

/// Deterministic request pool of `n` rows.
Tensor make_rows(std::size_t n, std::size_t width, std::uint64_t seed) {
  Tensor rows({n, width});
  Rng rng(seed);
  for (std::size_t i = 0; i < rows.numel(); ++i)
    rows[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return rows;
}

std::span<const float> row_span(const Tensor& pool, std::size_t row) {
  const std::size_t width = pool.numel() / pool.dim(0);
  return {pool.data() + row * width, width};
}

/// Reference output for one pool row via a single-row predict.
Tensor predict_row(Model& model, const Tensor& pool, std::size_t row) {
  Shape shape = pool.shape();
  shape[0] = 1;
  Tensor x(shape);
  const auto src = row_span(pool, row);
  std::copy(src.begin(), src.end(), x.data());
  return model.predict(x);
}

/// Exact (bit-identical) float comparison.
void expect_exact(std::span<const float> a, std::span<const float> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(CompileForInference, WeightsMatchTrainingCompileBitExact) {
  Model trained = make_mlp(7);
  Model served = make_mlp_inference(7);
  EXPECT_TRUE(served.inference_only());
  EXPECT_FALSE(trained.inference_only());
  const auto pt = trained.parameters();
  const auto ps = served.parameters();
  ASSERT_EQ(pt.size(), ps.size());
  for (std::size_t i = 0; i < pt.size(); ++i)
    expect_exact(pt[i]->values(), ps[i]->values());
}

TEST(CompileForInference, ReleasesGradientBuffers) {
  Model served = make_mlp_inference(7);
  for (Tensor* g : served.gradients()) EXPECT_EQ(g->numel(), 0u);
}

TEST(CompileForInference, PredictMatchesTrainingCompile) {
  Model trained = make_mlp(3);
  Model served = make_mlp_inference(3);
  const Tensor pool = make_rows(6, kIn, 21);
  for (std::size_t r = 0; r < pool.dim(0); ++r) {
    const Tensor a = predict_row(trained, pool, r);
    const Tensor b = predict_row(served, pool, r);
    expect_exact(a.values(), b.values());
  }
}

TEST(CompileForInference, TrainingEntryPointsThrow) {
  Model served = make_mlp_inference(7);
  const Tensor x = make_rows(4, kIn, 1);
  Tensor y({4, kOut});
  EXPECT_THROW(served.train_on_batch(x, y), InvalidArgument);
  EXPECT_THROW((void)served.evaluate(x, y), InvalidArgument);
  EXPECT_THROW(served.fit({x, y}, {.epochs = 1}), InvalidArgument);
  EXPECT_THROW(served.set_grad_ready_hook([](std::size_t, std::size_t) {}),
               InvalidArgument);
  EXPECT_NO_THROW(served.set_grad_ready_hook({}));
}

TEST(MicroBatcher, SingleRowMatchesPredictBitExact) {
  Model reference = make_mlp(5);
  Model served = make_mlp_inference(5);
  MicroBatcher batcher(served, {.max_batch = 4, .batch_deadline_s = 0.001});
  EXPECT_EQ(batcher.row_numel(), kIn);
  const Tensor pool = make_rows(3, kIn, 9);
  const Response r = batcher.submit(row_span(pool, 1)).get();
  const Tensor expected = predict_row(reference, pool, 1);
  ASSERT_EQ(r.y.shape(), Shape({kOut}));
  expect_exact(r.y.values(), expected.values());
  EXPECT_GE(r.batch_rows, 1u);
}

TEST(MicroBatcher, FullBatchClosesBySize) {
  Model served = make_mlp_inference(2);
  // Deadline far beyond the test horizon: only size can close the batch.
  MicroBatcher batcher(served, {.max_batch = 4, .batch_deadline_s = 60.0});
  const Tensor pool = make_rows(4, kIn, 13);
  std::vector<std::future<Response>> futures(4);
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (std::size_t c = 0; c < 4; ++c)
    clients.emplace_back([&, c] { futures[c] = batcher.submit(row_span(pool, c)); });
  for (auto& t : clients) t.join();
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.batch_rows, 4u);
    EXPECT_FALSE(r.deadline_closed);
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.rows, 4u);
  EXPECT_EQ(stats.full_batches, 1u);
  EXPECT_EQ(stats.deadline_batches, 0u);
  EXPECT_EQ(stats.max_batch_rows, 4u);
}

TEST(MicroBatcher, DeadlineClosesUnderfullBatch) {
  Model served = make_mlp_inference(2);
  MicroBatcher batcher(served, {.max_batch = 64, .batch_deadline_s = 0.05});
  const Tensor pool = make_rows(2, kIn, 17);
  auto f0 = batcher.submit(row_span(pool, 0));
  auto f1 = batcher.submit(row_span(pool, 1));
  const Response r0 = f0.get();
  const Response r1 = f1.get();
  EXPECT_TRUE(r0.deadline_closed);
  EXPECT_TRUE(r1.deadline_closed);
  EXPECT_LE(r0.batch_rows, 2u);
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_EQ(stats.full_batches, 0u);
  EXPECT_GE(stats.deadline_batches, 1u);
}

TEST(MicroBatcher, GreedyModeZeroDeadline) {
  Model served = make_mlp_inference(4);
  MicroBatcher batcher(served, {.max_batch = 8, .batch_deadline_s = 0.0});
  const Tensor pool = make_rows(8, kIn, 19);
  constexpr std::size_t kThreads = 4, kPerThread = 5;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    clients.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        (void)batcher.submit(row_span(pool, (t + i) % pool.dim(0))).get();
    });
  for (auto& t : clients) t.join();
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.rows, kThreads * kPerThread);
  EXPECT_GE(stats.batches, 1u);
}

TEST(MicroBatcher, DrainOnShutdownFulfilsPending) {
  Model served = make_mlp_inference(6);
  MicroBatcher batcher(served, {.max_batch = 64, .batch_deadline_s = 60.0});
  const Tensor pool = make_rows(3, kIn, 23);
  std::vector<std::future<Response>> futures;
  futures.reserve(3);
  for (std::size_t r = 0; r < 3; ++r)
    futures.push_back(batcher.submit(row_span(pool, r)));
  batcher.shutdown();
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.batch_rows, 3u);
    EXPECT_TRUE(r.deadline_closed);
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_EQ(stats.drained_batches, 1u);
  EXPECT_THROW((void)batcher.submit(row_span(pool, 0)), Error);
  batcher.shutdown();  // idempotent
}

TEST(MicroBatcher, RejectsMismatchedRowWidth) {
  Model served = make_mlp_inference(2);
  MicroBatcher batcher(served, {.max_batch = 4, .batch_deadline_s = 0.01});
  const std::vector<float> wrong(kIn + 1, 0.0f);
  EXPECT_THROW((void)batcher.submit(wrong), InvalidArgument);
}

TEST(MicroBatcher, RejectsBadOptionsAndUncompiledModel) {
  Model served = make_mlp_inference(2);
  EXPECT_THROW(MicroBatcher(served, {.max_batch = 0}), InvalidArgument);
  EXPECT_THROW(MicroBatcher(served, {.batch_deadline_s = -1.0}),
               InvalidArgument);
  Model raw;
  raw.add<nn::Dense>(4, nn::Act::kRelu);
  EXPECT_THROW(MicroBatcher(raw, {}), InvalidArgument);
}

// The determinism contract under real concurrency — also the TSan stress
// test: 8 clients hammer one batcher; every served row must be
// bit-identical to a single-row predict on the reference model.
TEST(MicroBatcher, ConcurrentClientsBitIdenticalToPredict) {
  Model reference = make_mlp(8);
  Model served = make_mlp_inference(8);
  const Tensor pool = make_rows(64, kIn, 29);
  // Precompute the per-row references (single-row batches).
  std::vector<Tensor> expected;
  expected.reserve(pool.dim(0));
  for (std::size_t r = 0; r < pool.dim(0); ++r)
    expected.push_back(predict_row(reference, pool, r));

  MicroBatcher batcher(served, {.max_batch = 8, .batch_deadline_s = 0.001});
  constexpr std::size_t kThreads = 8, kPerThread = 32;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    clients.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t row = (t * 31 + i * 7) % pool.dim(0);
        const Response r = batcher.submit(row_span(pool, row)).get();
        const auto want = expected[row].values();
        const auto got = r.y.values();
        if (got.size() != want.size()) {
          ++mismatches[t];
          continue;
        }
        for (std::size_t j = 0; j < want.size(); ++j)
          if (got[j] != want[j]) ++mismatches[t];
      }
    });
  for (auto& t : clients) t.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_EQ(stats.rows, kThreads * kPerThread);
  EXPECT_LE(stats.max_batch_rows, 8u);
}

TEST(InferenceServer, MultiModelRoutingAndValidation) {
  InferenceServer server;
  server.add_model("mlp-a", make_mlp_inference(1),
                   {.max_batch = 4, .batch_deadline_s = 0.001});
  server.add_model("mlp-b", make_mlp_inference(2),
                   {.max_batch = 4, .batch_deadline_s = 0.001});
  EXPECT_EQ(server.model_count(), 2u);
  EXPECT_TRUE(server.has_model("mlp-a"));
  EXPECT_FALSE(server.has_model("mlp-c"));
  EXPECT_EQ(server.model_names(),
            (std::vector<std::string>{"mlp-a", "mlp-b"}));
  EXPECT_THROW(server.add_model("mlp-a", make_mlp_inference(3)),
               InvalidArgument);

  Model ref_a = make_mlp(1);
  Model ref_b = make_mlp(2);
  const Tensor pool = make_rows(4, kIn, 31);
  for (std::size_t r = 0; r < pool.dim(0); ++r) {
    const Response ra = server.submit("mlp-a", row_span(pool, r)).get();
    const Response rb = server.submit("mlp-b", row_span(pool, r)).get();
    expect_exact(ra.y.values(), predict_row(ref_a, pool, r).values());
    expect_exact(rb.y.values(), predict_row(ref_b, pool, r).values());
  }
  EXPECT_THROW((void)server.submit("mlp-c", row_span(pool, 0)),
               InvalidArgument);
  EXPECT_EQ(server.stats("mlp-a").rows, 4u);
  server.shutdown();
}

/// Serialize -> compile_for_inference -> load -> serve must be
/// bit-identical to the in-memory model the checkpoint came from.
void check_checkpoint_round_trip(BenchmarkId id) {
  const ScaledGeometry geometry = scaled_geometry(id, 0.002);
  const BenchmarkData data = make_benchmark_data(id, geometry, 11);

  Model trained = build_model(id, geometry);
  compile_benchmark_model(id, trained, geometry, 0.001, 7);
  // Move off the init point so the round trip covers trained weights.
  const std::size_t rows = std::min<std::size_t>(geometry.batch,
                                                 data.train.x.dim(0));
  Shape xs = data.train.x.shape();
  Shape ys = data.train.y.shape();
  xs[0] = ys[0] = rows;
  Tensor xb(xs), yb(ys);
  nn::take_rows(data.train.x, 0, rows, xb);
  nn::take_rows(data.train.y, 0, rows, yb);
  (void)trained.train_on_batch(xb, yb);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("candle_serve_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path =
      (dir / (std::string(benchmark_name(id)) + ".ckpt")).string();
  nn::save_weights(trained, path);

  InferenceServer server;
  server.add_model_from_checkpoint(
      benchmark_name(id), build_model(id, geometry), {geometry.features},
      path, {.max_batch = 4, .batch_deadline_s = 0.01});
  for (std::size_t r = 0; r < 8 && r < data.test.x.dim(0); ++r) {
    const Response got =
        server.submit(benchmark_name(id), row_span(data.test.x, r)).get();
    const Tensor want = predict_row(trained, data.test.x, r);
    expect_exact(got.y.values(), want.values());
  }
  server.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(InferenceServer, CheckpointRoundTripNT3) {
  check_checkpoint_round_trip(BenchmarkId::kNT3);
}

TEST(InferenceServer, CheckpointRoundTripP1B1) {
  check_checkpoint_round_trip(BenchmarkId::kP1B1);
}

TEST(InferenceServer, CheckpointPathValidation) {
  InferenceServer server;
  EXPECT_THROW(server.add_model_from_checkpoint(
                   "m", make_mlp_inference(1), {kIn}, "/no/such/file.ckpt"),
               Error);
}

TEST(Loadgen, ScheduleIsDeterministicAndOrdered) {
  const Tensor pool = make_rows(16, kIn, 37);
  const std::vector<TrafficSource> sources = {
      {"a", &pool, 1.0}, {"b", &pool, 3.0}};
  LoadgenOptions options;
  options.requests = 400;
  options.offered_rps = 1000.0;
  options.arrival = ArrivalKind::kPoisson;
  options.seed = 123;
  const auto s1 = make_schedule(options, sources);
  const auto s2 = make_schedule(options, sources);
  ASSERT_EQ(s1.size(), 400u);
  std::size_t source_counts[2] = {0, 0};
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].at_s, s2[i].at_s);
    EXPECT_EQ(s1[i].source, s2[i].source);
    EXPECT_EQ(s1[i].row, s2[i].row);
    if (i > 0) {
      EXPECT_GE(s1[i].at_s, s1[i - 1].at_s);
    }
    EXPECT_LT(s1[i].row, pool.dim(0));
    ASSERT_LT(s1[i].source, 2u);
    ++source_counts[s1[i].source];
  }
  // Weight 3 source must dominate the mix.
  EXPECT_GT(source_counts[1], source_counts[0]);
}

TEST(Loadgen, UniformScheduleHasExactGaps) {
  const Tensor pool = make_rows(4, kIn, 41);
  LoadgenOptions options;
  options.requests = 10;
  options.offered_rps = 100.0;
  options.arrival = ArrivalKind::kUniform;
  const auto s = make_schedule(options, {{"m", &pool, 1.0}});
  for (std::size_t i = 1; i < s.size(); ++i)
    EXPECT_NEAR(s[i].at_s - s[i - 1].at_s, 0.01, 1e-12);
}

TEST(Loadgen, BurstScheduleConcentratesArrivals) {
  const Tensor pool = make_rows(4, kIn, 43);
  LoadgenOptions options;
  options.requests = 2000;
  options.offered_rps = 5000.0;
  options.arrival = ArrivalKind::kBurst;
  options.burst_factor = 2.0;
  options.burst_fraction = 0.25;
  options.burst_period_s = 0.05;
  const auto s = make_schedule(options, {{"m", &pool, 1.0}});
  std::size_t in_burst = 0, off_burst = 0;
  for (const ScheduledRequest& req : s) {
    const double phase = req.at_s - std::floor(req.at_s / 0.05) * 0.05;
    (phase < 0.25 * 0.05 ? in_burst : off_burst) += 1;
  }
  // Arrival *density* in the burst window must exceed the off-window
  // density (window widths are 1:3, so compare rates, not counts).
  EXPECT_GT(static_cast<double>(in_burst) / 0.25,
            static_cast<double>(off_burst) / 0.75);
}

TEST(Loadgen, ScheduleValidation) {
  const Tensor pool = make_rows(4, kIn, 47);
  LoadgenOptions options;
  EXPECT_THROW((void)make_schedule(options, {}), InvalidArgument);
  options.requests = 0;
  EXPECT_THROW((void)make_schedule(options, {{"m", &pool, 1.0}}),
               InvalidArgument);
  options.requests = 4;
  EXPECT_THROW((void)make_schedule(options, {{"m", &pool, -1.0}}),
               InvalidArgument);
  EXPECT_THROW((void)make_schedule(options, {{"m", nullptr, 1.0}}),
               InvalidArgument);
}

TEST(Loadgen, ClosedLoopCompletesAllRequests) {
  InferenceServer server;
  server.add_model("mlp-a", make_mlp_inference(1),
                   {.max_batch = 8, .batch_deadline_s = 0.001});
  server.add_model("mlp-b", make_mlp_inference(2),
                   {.max_batch = 8, .batch_deadline_s = 0.001});
  const Tensor pool = make_rows(16, kIn, 53);
  const std::vector<TrafficSource> sources = {
      {"mlp-a", &pool, 1.0}, {"mlp-b", &pool, 1.0}};
  LoadgenOptions options;
  options.mode = LoopMode::kClosed;
  options.clients = 4;
  options.requests = 64;
  options.offered_rps = 2000.0;
  const LoadgenReport report = run_loadgen(server, sources, options);
  EXPECT_EQ(report.completed, 64u);
  EXPECT_EQ(report.latencies_ms.size(), 64u);
  std::size_t per_model_total = 0;
  for (const auto& [model, count] : report.per_model)
    per_model_total += count;
  EXPECT_EQ(per_model_total, 64u);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_GT(report.p50_ms, 0.0);
  EXPECT_LE(report.p50_ms, report.p90_ms);
  EXPECT_LE(report.p90_ms, report.p99_ms);
  EXPECT_LE(report.p99_ms, report.max_ms);
  EXPECT_EQ(server.stats("mlp-a").rows + server.stats("mlp-b").rows, 64u);
  server.shutdown();
}

TEST(Loadgen, OpenLoopHonoursArrivalSchedule) {
  InferenceServer server;
  server.add_model("mlp", make_mlp_inference(5),
                   {.max_batch = 8, .batch_deadline_s = 0.002});
  const Tensor pool = make_rows(16, kIn, 59);
  const std::vector<TrafficSource> sources = {{"mlp", &pool, 1.0}};
  LoadgenOptions options;
  options.mode = LoopMode::kOpen;
  options.clients = 4;
  options.requests = 48;
  options.offered_rps = 2000.0;
  options.arrival = ArrivalKind::kPoisson;
  const auto schedule = make_schedule(options, sources);
  const LoadgenReport report = run_loadgen(server, sources, options);
  EXPECT_EQ(report.completed, 48u);
  // Open loop cannot finish before the last scheduled arrival.
  EXPECT_GE(report.wall_s, schedule.back().at_s);
  for (double ms : report.latencies_ms) EXPECT_GT(ms, 0.0);
  server.shutdown();
}

TEST(Loadgen, RunValidation) {
  InferenceServer server;
  server.add_model("mlp", make_mlp_inference(1),
                   {.max_batch = 4, .batch_deadline_s = 0.001});
  const Tensor pool = make_rows(4, kIn, 61);
  const Tensor narrow = make_rows(4, kIn - 1, 61);
  LoadgenOptions options;
  options.requests = 4;
  options.clients = 0;
  EXPECT_THROW((void)run_loadgen(server, {{"mlp", &pool, 1.0}}, options),
               InvalidArgument);
  options.clients = 2;
  EXPECT_THROW((void)run_loadgen(server, {{"nope", &pool, 1.0}}, options),
               InvalidArgument);
  EXPECT_THROW((void)run_loadgen(server, {{"mlp", &narrow, 1.0}}, options),
               InvalidArgument);
  server.shutdown();
}

}  // namespace
}  // namespace candle::serve
