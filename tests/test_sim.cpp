// Tests for src/sim: machine models, calibration profiles, and the run
// simulator — asserting the qualitative shapes the paper reports.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "nn/parallelism.h"
#include "sim/calibration.h"
#include "sim/dvfs.h"
#include "sim/event_sim.h"
#include "sim/scaling_metrics.h"
#include "sim/machine.h"
#include "sim/run_sim.h"

namespace candle::sim {
namespace {

// ---------------------------------------------------------------------------
// Machine models
// ---------------------------------------------------------------------------

TEST(Machine, SummitTopology) {
  const Machine& s = Machine::summit();
  EXPECT_EQ(s.ranks_per_node, 6u);        // 6 V100 per node
  EXPECT_EQ(s.nodes_for(384), 64u);       // the paper's strong-scaling max
  EXPECT_EQ(s.nodes_for(3072), 512u);     // the weak-scaling max
  EXPECT_EQ(s.nodes_for(1), 1u);
  EXPECT_EQ(s.nodes_for(7), 2u);
  EXPECT_DOUBLE_EQ(s.meter_hz, 1.0);      // nvidia-smi
  EXPECT_TRUE(s.has_gpus);
}

TEST(Machine, ThetaTopology) {
  const Machine& t = Machine::theta();
  EXPECT_EQ(t.ranks_per_node, 1u);
  EXPECT_EQ(t.nodes_for(384), 384u);
  EXPECT_DOUBLE_EQ(t.meter_hz, 2.0);      // PoLiMEr
  EXPECT_FALSE(t.has_gpus);
}

TEST(Machine, IoContentionGrowsWithNodes) {
  const Machine& s = Machine::summit();
  EXPECT_DOUBLE_EQ(s.io_contention(1, false), 1.0);
  EXPECT_DOUBLE_EQ(s.io_contention(6, false), 1.0);  // still one node
  const double c64 = s.io_contention(384, false);
  const double c512 = s.io_contention(3072, false);
  EXPECT_GT(c64, 1.2);
  EXPECT_GT(c512, c64);
}

TEST(Machine, ChunkedLoaderSeesLessContention) {
  for (const Machine* m : {&Machine::summit(), &Machine::theta()}) {
    EXPECT_LT(m->io_contention(384, true), m->io_contention(384, false))
        << m->name;
  }
}

TEST(Machine, ThetaContentionFarExceedsSummit) {
  // §5.1: at-scale loading on Theta is >4x Summit's.
  const double theta = Machine::theta().io_contention(384, false);
  const double summit = Machine::summit().io_contention(384, false);
  EXPECT_GT(theta, 3.0 * summit);
}

TEST(Machine, SyncOverheadShape) {
  const Machine& s = Machine::summit();
  EXPECT_DOUBLE_EQ(s.sync_overhead(1), 0.0);
  EXPECT_GT(s.sync_overhead(6), 0.0);
  EXPECT_GT(s.sync_overhead(384), s.sync_overhead(6));
  EXPECT_GT(s.sync_overhead(3072), s.sync_overhead(384));
}

// ---------------------------------------------------------------------------
// Calibration profiles (Table 1 fidelity)
// ---------------------------------------------------------------------------

TEST(Calibration, Table1Values) {
  const auto& nt3 = BenchmarkProfile::nt3();
  EXPECT_EQ(nt3.train_samples, 1120u);
  EXPECT_EQ(nt3.default_batch, 20u);
  EXPECT_EQ(nt3.default_epochs, 384u);
  EXPECT_EQ(nt3.optimizer, "sgd");
  EXPECT_EQ(nt3.features_per_sample, 60483u);
  EXPECT_EQ(nt3.steps_per_epoch(20), 56u);  // 1120/20, as in §2.1.1

  const auto& p1b1 = BenchmarkProfile::p1b1();
  EXPECT_EQ(p1b1.optimizer, "adam");
  EXPECT_EQ(p1b1.steps_per_epoch(100), 27u);  // 2700/100 (§4.2.2)

  const auto& p1b2 = BenchmarkProfile::p1b2();
  EXPECT_EQ(p1b2.default_epochs, 768u);
  EXPECT_EQ(p1b2.optimizer, "rmsprop");
  EXPECT_EQ(p1b2.steps_per_epoch(60), 45u);  // 2700/60 (§2.1.3)

  const auto& p1b3 = BenchmarkProfile::p1b3();
  EXPECT_EQ(p1b3.default_epochs, 1u);
  EXPECT_EQ(p1b3.train_samples, 900100u);
  EXPECT_EQ(p1b3.steps_per_epoch(100), 9001u);  // §2.1.4
}

TEST(Calibration, LoaderTimesMatchTable3) {
  const auto& nt3 = BenchmarkProfile::nt3().summit;
  EXPECT_DOUBLE_EQ(nt3.load_original.train_s, 81.72);
  EXPECT_DOUBLE_EQ(nt3.load_chunked.train_s, 14.30);
  const auto& p1b1 = BenchmarkProfile::p1b1().summit;
  EXPECT_DOUBLE_EQ(p1b1.load_original.train_s, 235.68);
  EXPECT_DOUBLE_EQ(p1b1.load_chunked.train_s, 30.99);
}

TEST(Calibration, DaskLandsBetweenOriginalAndChunked) {
  for (const BenchmarkProfile* p : BenchmarkProfile::all()) {
    for (MachineKind kind : {MachineKind::kSummit, MachineKind::kTheta}) {
      const auto& mc = p->on(kind);
      const LoaderSeconds dask = p->load_dask(kind);
      EXPECT_GE(dask.total(), mc.load_chunked.total()) << p->name;
      EXPECT_LE(dask.total(), mc.load_original.total()) << p->name;
    }
  }
}

TEST(Calibration, ByNameLookup) {
  EXPECT_EQ(&BenchmarkProfile::by_name("NT3"), &BenchmarkProfile::nt3());
  EXPECT_EQ(&BenchmarkProfile::by_name("p1b3"), &BenchmarkProfile::p1b3());
  EXPECT_THROW(BenchmarkProfile::by_name("P9"), InvalidArgument);
  EXPECT_EQ(BenchmarkProfile::all().size(), 4u);
}

// ---------------------------------------------------------------------------
// RunSimulator: calibration anchors
// ---------------------------------------------------------------------------

TEST(RunSimulator, Nt3TimePerEpochMatchesPaperAnchors) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  // ~10.3 s/epoch sequential (Table 6).
  RunPlan seq;
  seq.ranks = 1;
  seq.epochs_per_rank = 1;
  const SimResult r1 = sim.simulate(seq);
  EXPECT_NEAR(r1.time_per_epoch, 10.3, 0.5);

  // ~22 s/epoch on 384 GPUs (§4.2.1: "increases significantly from around
  // 10 s on one GPU to around 22 s on 384 GPUs").
  RunPlan p384 = seq;
  p384.ranks = 384;
  const SimResult r384 = sim.simulate(p384);
  EXPECT_NEAR(r384.time_per_epoch, 22.0, 4.0);

  // >3x sequential on 3,072 GPUs (§7).
  RunPlan p3072 = seq;
  p3072.ranks = 3072;
  const SimResult r3072 = sim.simulate(p3072);
  EXPECT_GT(r3072.time_per_epoch, 3.0 * r1.time_per_epoch);
}

TEST(RunSimulator, Nt3ThetaEpochAnchors) {
  RunSimulator sim(Machine::theta(), BenchmarkProfile::nt3());
  // 695 s on 24 nodes -> 965 s on 384 nodes (§5.1).
  RunPlan p24;
  p24.ranks = 24;
  p24.epochs_per_rank = 1;
  EXPECT_NEAR(sim.simulate(p24).time_per_epoch, 695.0, 40.0);
  RunPlan p384 = p24;
  p384.ranks = 384;
  EXPECT_NEAR(sim.simulate(p384).time_per_epoch, 965.0, 60.0);
}

TEST(RunSimulator, LargerBatchReducesEpochTimeAndPower) {
  // Table 2's two columns: bs 40 has lower time/epoch and lower power.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan bs20;
  bs20.ranks = 6;
  bs20.epochs_per_rank = 4;
  bs20.batch_per_rank = 20;
  RunPlan bs40 = bs20;
  bs40.batch_per_rank = 40;
  const SimResult r20 = sim.simulate(bs20);
  const SimResult r40 = sim.simulate(bs40);
  EXPECT_LT(r40.time_per_epoch, r20.time_per_epoch);
  EXPECT_LT(sim.compute_power_watts(40), sim.compute_power_watts(20));
}

TEST(RunSimulator, Nt3OomAtBatch50) {
  // §4.2.1: "using a batch size of 50 or larger causes running out of
  // memory" on the 16 GB V100.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 6;
  plan.epochs_per_rank = 1;
  plan.batch_per_rank = 40;
  EXPECT_NO_THROW(sim.simulate(plan));
  plan.batch_per_rank = 50;
  EXPECT_THROW(sim.simulate(plan), OutOfMemory);
}

TEST(RunSimulator, P1b3LinearScalingOomAt192Gpus) {
  // §4.2.4: linear scaling fails at 19,200 / 38,400 per-rank batch.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::p1b3());
  RunPlan plan;
  plan.ranks = 96;
  plan.epochs_per_rank = 1;
  plan.batch_per_rank = 9600;
  plan.level = ParallelLevel::kBatchStep;
  EXPECT_NO_THROW(sim.simulate(plan));
  plan.ranks = 192;
  plan.batch_per_rank = 19200;
  EXPECT_THROW(sim.simulate(plan), OutOfMemory);
}

TEST(RunSimulator, BroadcastOverheadAnchors) {
  // Fig 7b vs Fig 12: negotiate_broadcast ~43.7 s with the original loader
  // on 384 GPUs, ~4.65 s optimized.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  const double orig = sim.load_skew_seconds(io::LoaderKind::kOriginal, 384);
  const double opt = sim.load_skew_seconds(io::LoaderKind::kChunked, 384);
  EXPECT_NEAR(orig, 43.7, 6.0);
  EXPECT_NEAR(opt, 4.65, 1.5);
  EXPECT_GT(orig / opt, 5.0);  // paper: 89.36% reduction (~9.4x)
}

TEST(RunSimulator, DataLoadingDominatesNt3At48Gpus) {
  // §4.2.1: "on 48 GPUs or more, the data-loading time dominates the total
  // runtime" (original loader, strong scaling of 384 epochs).
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 48;
  plan.epochs_per_rank = 384 / 48;
  plan.loader = io::LoaderKind::kOriginal;
  const SimResult r = sim.simulate(plan);
  EXPECT_GT(r.phases.data_load, r.phases.train());
}

TEST(RunSimulator, OptimizedLoaderImprovesTotalRuntime) {
  // The headline: chunked loading cuts NT3 total time by >50% at scale.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan orig;
  orig.ranks = 384;
  orig.epochs_per_rank = 1;
  orig.loader = io::LoaderKind::kOriginal;
  RunPlan opt = orig;
  opt.loader = io::LoaderKind::kChunked;
  const double t_orig = sim.simulate(orig).phases.total();
  const double t_opt = sim.simulate(opt).phases.total();
  const double improvement = (t_orig - t_opt) / t_orig;
  EXPECT_GT(improvement, 0.5);
  EXPECT_LT(improvement, 0.85);
}

TEST(RunSimulator, OptimizedLoaderRaisesAvgPowerButSavesEnergy) {
  // Table 5: average GPU power increases (less low-power idle time) while
  // energy decreases.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan orig;
  orig.ranks = 384;
  orig.epochs_per_rank = 1;
  orig.loader = io::LoaderKind::kOriginal;
  RunPlan opt = orig;
  opt.loader = io::LoaderKind::kChunked;
  const SimResult r_orig = sim.simulate(orig);
  const SimResult r_opt = sim.simulate(opt);
  EXPECT_GT(r_opt.avg_power_w, r_orig.avg_power_w);
  EXPECT_LT(r_opt.energy_per_rank_j, r_orig.energy_per_rank_j);
}

TEST(RunSimulator, WeakScalingEpochsStayConstantButOverheadGrows) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.epochs_per_rank = 8;  // the paper's weak-scaling setting (§6)
  plan.loader = io::LoaderKind::kChunked;
  double prev_total = 0.0;
  for (std::size_t ranks : {6u, 48u, 384u, 3072u}) {
    plan.ranks = ranks;
    const SimResult r = sim.simulate(plan);
    EXPECT_GT(r.phases.total(), prev_total) << ranks;
    prev_total = r.phases.total();
  }
}

TEST(RunSimulator, HierarchicalAllreduceWinsInTheLatencyBoundRegime) {
  // Two-level reduction runs its inter-node ring over 6x fewer
  // participants; the advantage appears where per-stage latency dominates
  // (thousands of ranks), while at moderate scale the extra NVLink passes
  // roughly cancel it — which is why NCCL switches algorithms by size.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  EXPECT_LT(sim.allreduce_hierarchical_seconds(3072),
            sim.allreduce_step_seconds(3072));
  EXPECT_NEAR(sim.allreduce_hierarchical_seconds(48),
              sim.allreduce_step_seconds(48),
              0.1 * sim.allreduce_step_seconds(48));
  EXPECT_DOUBLE_EQ(sim.allreduce_hierarchical_seconds(1), 0.0);
  EXPECT_GT(sim.allreduce_hierarchical_seconds(384),
            sim.allreduce_hierarchical_seconds(12));
}

TEST(RunSimulator, CompressedWireDefaultsAreBitIdenticalToFp32Ring) {
  // The dtype/algo-aware overload must collapse exactly onto the legacy
  // model at the defaults — same doubles, not merely close — so every
  // previously calibrated anchor in this file keeps holding.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  for (std::size_t ranks : {1u, 2u, 48u, 384u, 3072u}) {
    EXPECT_DOUBLE_EQ(sim.allreduce_step_seconds(ranks),
                     sim.allreduce_step_seconds(ranks,
                                                comm::AllreduceAlgo::kRing,
                                                comm::WireDtype::kFp32));
    EXPECT_DOUBLE_EQ(
        sim.allreduce_hierarchical_seconds(ranks),
        sim.allreduce_step_seconds(ranks, comm::AllreduceAlgo::kHierarchical,
                                   comm::WireDtype::kFp32));
  }
  RunPlan plan;
  plan.ranks = 48;
  RunPlan explicit_plan = plan;
  explicit_plan.allreduce_algo = comm::AllreduceAlgo::kRing;
  explicit_plan.wire_dtype = comm::WireDtype::kFp32;
  EXPECT_DOUBLE_EQ(sim.simulate(plan).phases.total(),
                   sim.simulate(explicit_plan).phases.total());
}

TEST(RunSimulator, WireDtypeModelPredictsTheBandwidthCrossover) {
  // The conversion term flips the ordering exactly as the measured sweep
  // does (BENCH_collectives.json): on a slow wire halved bytes dominate
  // and fp16 wins; on a fast wire the codec passes cost more than the
  // transfer they save and fp32 stays ahead.
  Machine slow = Machine::summit();
  slow.net_bw = 100.0e6;             // congested fat-tree share
  slow.convert_elems_per_s = 1.5e9;  // measured single-core codec rate
  Machine fast = slow;
  fast.net_bw = 8.0e9;  // NVLink-class
  RunSimulator on_slow(slow, BenchmarkProfile::nt3());
  RunSimulator on_fast(fast, BenchmarkProfile::nt3());
  for (comm::AllreduceAlgo algo :
       {comm::AllreduceAlgo::kRing, comm::AllreduceAlgo::kNaive}) {
    EXPECT_LT(
        on_slow.allreduce_step_seconds(48, algo, comm::WireDtype::kFp16),
        on_slow.allreduce_step_seconds(48, algo, comm::WireDtype::kFp32));
    EXPECT_GT(
        on_fast.allreduce_step_seconds(48, algo, comm::WireDtype::kFp16),
        on_fast.allreduce_step_seconds(48, algo, comm::WireDtype::kFp32));
  }
  // bf16 shares fp16's width, so the model treats their wire cost alike.
  EXPECT_DOUBLE_EQ(
      on_slow.allreduce_step_seconds(48, comm::AllreduceAlgo::kRing,
                                     comm::WireDtype::kBf16),
      on_slow.allreduce_step_seconds(48, comm::AllreduceAlgo::kRing,
                                     comm::WireDtype::kFp16));
  // Hierarchical compresses only the inter-node leg, so its slow-wire gain
  // exists but is smaller than the flat ring's.
  const double hier_gain =
      on_slow.allreduce_step_seconds(48, comm::AllreduceAlgo::kHierarchical,
                                     comm::WireDtype::kFp32) -
      on_slow.allreduce_step_seconds(48, comm::AllreduceAlgo::kHierarchical,
                                     comm::WireDtype::kFp16);
  const double ring_gain =
      on_slow.allreduce_step_seconds(48, comm::AllreduceAlgo::kRing,
                                     comm::WireDtype::kFp32) -
      on_slow.allreduce_step_seconds(48, comm::AllreduceAlgo::kRing,
                                     comm::WireDtype::kFp16);
  EXPECT_GT(hier_gain, 0.0);
  EXPECT_LT(hier_gain, ring_gain);
}

TEST(RunSimulator, Int8ModelPredictsTheMeasuredDtypeOrdering) {
  // The committed sweep (BENCH_collectives.json, net_mbps=100) has int8
  // ahead of fp16/bf16 ahead of fp32: quartered payload beats halved
  // payload despite the steeper per-element quantizer. The model must
  // reproduce that ordering on the congested wire — and flip it on an
  // NVLink-class wire, where the int8 quantizer is the most expensive
  // codec of the three and there is no transfer left to save.
  Machine slow = Machine::summit();
  slow.net_bw = 100.0e6;             // congested fat-tree share
  slow.convert_elems_per_s = 1.5e9;  // measured single-core codec rates
  slow.quantize_elems_per_s = 1.2e9;
  Machine fast = slow;
  fast.net_bw = 8.0e9;  // NVLink-class
  RunSimulator on_slow(slow, BenchmarkProfile::nt3());
  RunSimulator on_fast(fast, BenchmarkProfile::nt3());
  for (comm::AllreduceAlgo algo :
       {comm::AllreduceAlgo::kRing, comm::AllreduceAlgo::kNaive}) {
    const double s_fp32 =
        on_slow.allreduce_step_seconds(48, algo, comm::WireDtype::kFp32);
    const double s_fp16 =
        on_slow.allreduce_step_seconds(48, algo, comm::WireDtype::kFp16);
    const double s_int8 =
        on_slow.allreduce_step_seconds(48, algo, comm::WireDtype::kInt8);
    EXPECT_LT(s_int8, s_fp16);
    EXPECT_LT(s_fp16, s_fp32);
    EXPECT_GT(
        on_fast.allreduce_step_seconds(48, algo, comm::WireDtype::kInt8),
        on_fast.allreduce_step_seconds(48, algo, comm::WireDtype::kFp32));
  }
  // The scale plane is charged: an int8 image costs strictly more than a
  // quarter of fp32's bytes, so the slow-wire gain is below a pure 4x.
  const double fp32_wire =
      on_slow.allreduce_step_seconds(48, comm::AllreduceAlgo::kRing,
                                     comm::WireDtype::kFp32);
  const double int8_wire =
      on_slow.allreduce_step_seconds(48, comm::AllreduceAlgo::kRing,
                                     comm::WireDtype::kInt8);
  EXPECT_GT(int8_wire, fp32_wire / 4.0);
}

TEST(RunSimulator, LocalWireDtypeModelsTheIntraNodeLegs) {
  // Satellite: hierarchical's phase-1/phase-3 legs can run at their own
  // dtype. The defaulted overload must collapse onto the 3-arg model, the
  // local dtype must be inert for flat algorithms, and its sign must flip
  // with the intra-node wire: cheaper when NVLink is the bottleneck,
  // costlier when NVLink is fast and only the quantizer remains.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  for (std::size_t ranks : {2u, 48u, 384u}) {
    for (comm::AllreduceAlgo algo :
         {comm::AllreduceAlgo::kRing, comm::AllreduceAlgo::kNaive,
          comm::AllreduceAlgo::kHierarchical}) {
      EXPECT_DOUBLE_EQ(
          sim.allreduce_step_seconds(ranks, algo, comm::WireDtype::kFp16),
          sim.allreduce_step_seconds(ranks, algo, comm::WireDtype::kFp16,
                                     comm::WireDtype::kFp32));
      if (algo != comm::AllreduceAlgo::kHierarchical) {
        // Flat rings have no intra-node leg for the local dtype to touch.
        EXPECT_DOUBLE_EQ(
            sim.allreduce_step_seconds(ranks, algo, comm::WireDtype::kFp32,
                                       comm::WireDtype::kInt8),
            sim.allreduce_step_seconds(ranks, algo, comm::WireDtype::kFp32));
      }
    }
  }
  // Summit's NVLink is fast: compressing the local leg only buys quantizer
  // time. On a PCIe-starved node the quartered local payload wins.
  EXPECT_GT(sim.allreduce_step_seconds(48, comm::AllreduceAlgo::kHierarchical,
                                       comm::WireDtype::kFp32,
                                       comm::WireDtype::kInt8),
            sim.allreduce_step_seconds(48, comm::AllreduceAlgo::kHierarchical,
                                       comm::WireDtype::kFp32));
  Machine starved = Machine::summit();
  starved.local_bw = 100.0e6;
  RunSimulator tight(starved, BenchmarkProfile::nt3());
  EXPECT_LT(
      tight.allreduce_step_seconds(48, comm::AllreduceAlgo::kHierarchical,
                                   comm::WireDtype::kFp32,
                                   comm::WireDtype::kInt8),
      tight.allreduce_step_seconds(48, comm::AllreduceAlgo::kHierarchical,
                                   comm::WireDtype::kFp32));
  // RunPlan carries the knob end to end through simulate().
  RunPlan plan;
  plan.ranks = 48;
  plan.allreduce_algo = comm::AllreduceAlgo::kHierarchical;
  RunPlan compressed = plan;
  compressed.local_wire_dtype = comm::WireDtype::kInt8;
  const RunSimulator tight_sim(starved, BenchmarkProfile::nt3());
  EXPECT_LT(tight_sim.simulate(compressed).phases.train_comm,
            tight_sim.simulate(plan).phases.train_comm);
}

TEST(RunSimulator, DataParallelLayerCostIsExactlyTheRingAllreduce) {
  // The per-layer data-parallel comm model must be the ring allreduce of the
  // layer's gradient — same doubles, so the decomposition into the shared
  // hop/codec helpers can never drift from the calibrated allreduce model.
  const RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  const std::size_t n = sim.profile().param_count;
  for (std::size_t ranks : {2u, 6u, 48u}) {
    for (comm::WireDtype dtype :
         {comm::WireDtype::kFp32, comm::WireDtype::kFp16,
          comm::WireDtype::kBf16, comm::WireDtype::kInt8}) {
      EXPECT_DOUBLE_EQ(
          sim.data_parallel_layer_comm_seconds(ranks, n, dtype),
          sim.allreduce_step_seconds(ranks, comm::AllreduceAlgo::kRing,
                                     dtype));
      // reduce-scatter + allgather pays one extra rendezvous over the fused
      // ring (and, compressed, one owned-segment round-trip); never less.
      EXPECT_GE(sim.reduce_scatter_seconds(ranks, n, dtype) +
                    sim.allgather_seconds(ranks, n, dtype),
                sim.data_parallel_layer_comm_seconds(ranks, n, dtype));
    }
  }
  EXPECT_DOUBLE_EQ(
      sim.data_parallel_layer_comm_seconds(1, n, comm::WireDtype::kFp32), 0.0);
  EXPECT_DOUBLE_EQ(
      sim.channel_parallel_layer_comm_seconds(1, n, n, comm::WireDtype::kFp32),
      0.0);
}

TEST(RunSimulator, ChannelParallelModelPredictsTheLayerWidthCrossover) {
  // Same geometries as the measured sweep (BENCH_tensor_parallel.json).
  // Wide MLP layer, small batch (256 -> 2048 at global batch 32): the
  // weight-gradient allreduce dwarfs the activation collectives and channel
  // parallelism wins — measured 224 ms vs 468 ms per 4 steps at 2 ranks.
  // Narrow layer, large batch (64 -> 64 at batch 512): activations outweigh
  // the tiny gradient and data parallelism wins (7.3 ms vs 14.0 ms).
  //
  // The machine models the benchmark host: ranks are threads, so a
  // rendezvous costs microseconds (not Summit's calibrated MPI/NCCL sync
  // overhead — there, channel's 3 collectives per layer only pay off for
  // far larger layers) and every transfer crosses one memcpy-class wire.
  Machine host = Machine::summit();
  host.ranks_per_node = 1;  // no NVLink tier: all ranks share one wire
  host.net_bw = 2.0e9;
  host.net_latency_s = 5.0e-6;
  host.sync_coeff_s = 1.0e-5;
  host.sync_exp = 1.0;
  const RunSimulator sim(host, BenchmarkProfile::nt3());
  constexpr std::size_t kWideIn = 256, kWideOut = 2048, kWideBatch = 32;
  constexpr std::size_t kNarrowIn = 64, kNarrowOut = 64, kNarrowBatch = 512;
  for (std::size_t ranks : {2u, 4u}) {
    for (comm::WireDtype dtype :
         {comm::WireDtype::kFp32, comm::WireDtype::kBf16}) {
      EXPECT_LT(sim.channel_parallel_layer_comm_seconds(
                    ranks, kWideBatch * kWideOut, kWideBatch * kWideIn, dtype),
                sim.data_parallel_layer_comm_seconds(
                    ranks, kWideIn * kWideOut + kWideOut, dtype));
      EXPECT_GT(sim.channel_parallel_layer_comm_seconds(
                    ranks, kNarrowBatch * kNarrowOut, kNarrowBatch * kNarrowIn,
                    dtype),
                sim.data_parallel_layer_comm_seconds(
                    ranks, kNarrowIn * kNarrowOut + kNarrowOut, dtype));
    }
  }
  // The compile-time planner heuristic keys on the same byte comparison, so
  // the sim and the planner agree on which layers to shard.
  EXPECT_EQ(nn::choose_parallelism(nn::ParallelismMode::kAuto, true,
                                   /*weight_bytes=*/4 *
                                       (kWideIn * kWideOut + kWideOut),
                                   /*activation_bytes=*/4 * kWideBatch *
                                       (kWideIn + kWideOut)),
            nn::LayerParallelism::kChannel);
  EXPECT_EQ(nn::choose_parallelism(nn::ParallelismMode::kAuto, true,
                                   /*weight_bytes=*/4 *
                                       (kNarrowIn * kNarrowOut + kNarrowOut),
                                   /*activation_bytes=*/4 * kNarrowBatch *
                                       (kNarrowIn + kNarrowOut)),
            nn::LayerParallelism::kData);
}

TEST(RunSimulator, TimelineCarriesPowerCounters) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 6;
  plan.epochs_per_rank = 2;
  plan.make_timeline = true;
  const SimResult r = sim.simulate(plan);
  ASSERT_NE(r.timeline, nullptr);
  EXPECT_GT(r.timeline->counter_count(), 10u);
  const std::string json = r.timeline->to_chrome_json();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("gpu_power_w"), std::string::npos);
}

TEST(RunSimulator, BatchStepShardingDividesSteps) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::p1b3());
  RunPlan plan;
  plan.ranks = 10;
  plan.epochs_per_rank = 1;
  plan.batch_per_rank = 100;
  plan.level = ParallelLevel::kBatchStep;
  const SimResult r = sim.simulate(plan);
  EXPECT_EQ(r.steps_per_epoch, (9001u + 9) / 10);
}

TEST(RunSimulator, TimelineAndTraceOnDemand) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 12;
  plan.epochs_per_rank = 2;
  const SimResult bare = sim.simulate(plan);
  EXPECT_EQ(bare.timeline, nullptr);
  EXPECT_TRUE(bare.trace.samples.empty());

  plan.make_timeline = true;
  plan.make_power_trace = true;
  const SimResult full = sim.simulate(plan);
  ASSERT_NE(full.timeline, nullptr);
  EXPECT_GT(full.timeline->size(), 0u);
  EXPECT_GT(full.trace.samples.size(), 10u);
  // Timeline lanes are capped at 6 (one node's GPUs), like the paper plots.
  for (const auto& e : full.timeline->events()) EXPECT_LT(e.rank, 6u);
  // Phase times and the sampled trace cover the same span.
  EXPECT_NEAR(full.timeline->span_end(), full.phases.total(), 1.0);
}

TEST(RunSimulator, EnergyConsistentWithPowerTimesTime) {
  RunSimulator sim(Machine::theta(), BenchmarkProfile::p1b2());
  RunPlan plan;
  plan.ranks = 24;
  plan.epochs_per_rank = 4;
  const SimResult r = sim.simulate(plan);
  EXPECT_NEAR(r.energy_per_rank_j, r.avg_power_w * r.phases.total(),
              0.02 * r.energy_per_rank_j);
  EXPECT_NEAR(r.total_energy_j, r.energy_per_rank_j * 24, 1.0);
}

TEST(RunSimulator, InvalidPlansThrow) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 0;
  EXPECT_THROW(sim.simulate(plan), InvalidArgument);
  plan.ranks = 1;
  plan.epochs_per_rank = 0;
  EXPECT_THROW(sim.simulate(plan), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Scaling metrics (speedup / efficiency / Karp-Flatt / Amdahl fit)
// ---------------------------------------------------------------------------

TEST(ScalingMetrics, SpeedupAndEfficiency) {
  const ScalingPoint base{1, 100.0};
  const ScalingPoint p4{4, 30.0};
  EXPECT_NEAR(speedup(base, p4), 100.0 / 30.0, 1e-9);
  EXPECT_NEAR(parallel_efficiency(base, p4), 100.0 / 30.0 / 4.0, 1e-9);
}

TEST(ScalingMetrics, KarpFlattOfPerfectScalingIsZero) {
  const ScalingPoint base{1, 80.0};
  EXPECT_NEAR(karp_flatt(base, {8, 10.0}), 0.0, 1e-9);
}

TEST(ScalingMetrics, KarpFlattRecoversKnownSerialFraction) {
  // Construct times from Amdahl's law with f = 0.2; Karp-Flatt must
  // recover 0.2 at every rank count.
  const double t1 = 120.0;
  const ScalingPoint base{1, t1};
  for (std::size_t p : {2u, 8u, 64u}) {
    const ScalingPoint point{p, amdahl_time(t1, 0.2, p)};
    EXPECT_NEAR(karp_flatt(base, point), 0.2, 1e-9) << p;
  }
}

TEST(ScalingMetrics, FitRecoversSerialFraction) {
  const double t1 = 200.0;
  std::vector<ScalingPoint> curve{{1, t1}};
  for (std::size_t p : {2u, 4u, 16u, 64u, 256u})
    curve.push_back({p, amdahl_time(t1, 0.07, p)});
  EXPECT_NEAR(fit_serial_fraction(curve), 0.07, 1e-4);
}

TEST(ScalingMetrics, OptimizedLoaderShrinksSerialFraction) {
  // The quantitative version of the paper's bottleneck claim.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  auto curve = [&](io::LoaderKind loader) {
    std::vector<ScalingPoint> c;
    for (std::size_t ranks : {1u, 6u, 24u, 96u, 384u}) {
      RunPlan plan;
      plan.ranks = ranks;
      plan.epochs_per_rank = 384 / ranks;
      plan.loader = loader;
      c.push_back({ranks, sim.simulate(plan).phases.total()});
    }
    return c;
  };
  const double f_orig = fit_serial_fraction(curve(io::LoaderKind::kOriginal));
  const double f_opt = fit_serial_fraction(curve(io::LoaderKind::kChunked));
  EXPECT_GT(f_orig, 2.0 * f_opt);
}

TEST(ScalingMetrics, InvalidInputsThrow) {
  EXPECT_THROW(speedup({2, 10.0}, {4, 5.0}), InvalidArgument);
  EXPECT_THROW(karp_flatt({1, 10.0}, {1, 10.0}), InvalidArgument);
  EXPECT_THROW(amdahl_time(10.0, 1.5, 2), InvalidArgument);
  EXPECT_THROW(fit_serial_fraction({{1, 10.0}}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Monte-Carlo straggler simulation (cross-validates the analytic skew)
// ---------------------------------------------------------------------------

TEST(EventSim, DeterministicInSeed) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  const auto a = simulate_startup(sim, io::LoaderKind::kOriginal, 48, 5);
  const auto b = simulate_startup(sim, io::LoaderKind::kOriginal, 48, 5);
  EXPECT_EQ(a.load_seconds, b.load_seconds);
  const auto c = simulate_startup(sim, io::LoaderKind::kOriginal, 48, 6);
  EXPECT_NE(a.load_seconds, c.load_seconds);
}

TEST(EventSim, WaitsAreMaxArrivalMinusOwn) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  const auto s = simulate_startup(sim, io::LoaderKind::kOriginal, 32, 1);
  double min_wait = 1e30;
  for (std::size_t r = 0; r < 32; ++r) {
    EXPECT_NEAR(s.negotiate_wait[r] + s.load_seconds[r], s.max_arrival,
                1e-9);
    min_wait = std::min(min_wait, s.negotiate_wait[r]);
  }
  EXPECT_NEAR(min_wait, 0.0, 1e-9);  // the slowest rank never waits
}

TEST(EventSim, McAgreesWithAnalyticSkewAtScale) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  for (auto loader : {io::LoaderKind::kOriginal, io::LoaderKind::kChunked}) {
    const double mc = mc_negotiate_overhead(sim, loader, 384, 25, 11);
    const double analytic = sim.load_skew_seconds(loader, 384);
    EXPECT_NEAR(mc, analytic, 0.25 * analytic)
        << io::loader_name(loader) << " mc=" << mc << " an=" << analytic;
  }
}

TEST(EventSim, OptimizedLoaderShrinksEmergentOverhead) {
  // The paper's Fig 12 effect, emergent from per-rank draws.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  const double orig =
      mc_negotiate_overhead(sim, io::LoaderKind::kOriginal, 384, 10, 3);
  const double opt =
      mc_negotiate_overhead(sim, io::LoaderKind::kChunked, 384, 10, 3);
  EXPECT_GT(orig / opt, 4.0);
}

TEST(EventSim, SingleRankHasNoWait) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  const auto s = simulate_startup(sim, io::LoaderKind::kChunked, 1, 1);
  EXPECT_DOUBLE_EQ(s.mean_wait, 0.0);
}

// ---------------------------------------------------------------------------
// DVFS performance-power model (§7 future-work extension)
// ---------------------------------------------------------------------------

TEST(Dvfs, NominalFrequencyReproducesBaseRun) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 6;
  plan.epochs_per_rank = 8;
  const SimResult base = sim.simulate(plan);
  const DvfsPoint p = dvfs_evaluate(sim, plan, 1.0);
  EXPECT_NEAR(p.total_s, base.phases.total(), 1e-6);
  EXPECT_NEAR(p.energy_j, base.energy_per_rank_j,
              0.02 * base.energy_per_rank_j);
}

TEST(Dvfs, LowerFrequencyIsSlower) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 6;
  plan.epochs_per_rank = 8;
  const DvfsPoint slow = dvfs_evaluate(sim, plan, 0.6);
  const DvfsPoint fast = dvfs_evaluate(sim, plan, 1.0);
  EXPECT_GT(slow.total_s, fast.total_s);
}

TEST(Dvfs, EnergyOptimumIsBelowNominal) {
  // With cubic dynamic power, the energy-optimal frequency for a
  // compute-heavy run sits below nominal.
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 1;            // compute dominates at 1 GPU (384 epochs)
  plan.epochs_per_rank = 64;
  plan.loader = io::LoaderKind::kChunked;
  const auto sweep = dvfs_sweep(sim, plan);
  const DvfsPoint e_opt = dvfs_energy_optimal(sweep);
  EXPECT_LT(e_opt.freq_ratio, 1.0);
  // And ED²P favors a higher frequency than pure energy does.
  const DvfsPoint p_opt = dvfs_ed2p_optimal(sweep);
  EXPECT_GE(p_opt.freq_ratio, e_opt.freq_ratio);
}

TEST(Dvfs, SweepIsMonotoneInTime) {
  RunSimulator sim(Machine::theta(), BenchmarkProfile::p1b2());
  RunPlan plan;
  plan.ranks = 24;
  plan.epochs_per_rank = 4;
  const auto sweep = dvfs_sweep(sim, plan);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_LT(sweep[i].total_s, sweep[i - 1].total_s);
}

TEST(Dvfs, InvalidArgsThrow) {
  RunSimulator sim(Machine::summit(), BenchmarkProfile::nt3());
  RunPlan plan;
  plan.ranks = 1;
  plan.epochs_per_rank = 1;
  EXPECT_THROW(dvfs_evaluate(sim, plan, 0.0), InvalidArgument);
  DvfsModel bad;
  bad.steps = 1;
  EXPECT_THROW(dvfs_sweep(sim, plan, bad), InvalidArgument);
  EXPECT_THROW(dvfs_energy_optimal({}), InvalidArgument);
}

// Parameterized sweep: strong-scaling total runtime decreases with GPU
// count as long as compute dominates, for every benchmark.
class StrongScalingSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(StrongScalingSweep, TensorFlowPhaseShrinksWithGpus) {
  const BenchmarkProfile& p = BenchmarkProfile::by_name(GetParam());
  RunSimulator sim(Machine::summit(), p);
  double prev_train = 1e30;
  for (std::size_t ranks : {1u, 6u, 24u, 96u}) {
    const std::size_t epochs =
        std::max<std::size_t>(1, p.default_epochs / ranks);
    RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = epochs;
    const SimResult r = sim.simulate(plan);
    EXPECT_LT(r.phases.train(), prev_train) << GetParam() << "@" << ranks;
    prev_train = r.phases.train();
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, StrongScalingSweep,
                         ::testing::Values("NT3", "P1B1", "P1B2"));

}  // namespace
}  // namespace candle::sim
