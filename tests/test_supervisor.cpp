// Tests for src/supervisor: search spaces, the cluster scheduler, the
// results database, and end-to-end campaigns.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/error.h"
#include "supervisor/supervisor.h"

namespace candle::supervisor {
namespace {

SearchSpace small_space() {
  SearchSpace s;
  s.epochs = {2, 4};
  s.batches = {20, 40};
  s.learning_rates = {0.001, 0.01};
  s.optimizers = {"sgd", "adam"};
  return s;
}

// ---------------------------------------------------------------------------
// Search space
// ---------------------------------------------------------------------------

TEST(SearchSpace, GridEnumeratesFullCartesianProduct) {
  const auto trials = grid_search(small_space());
  EXPECT_EQ(trials.size(), 16u);
  std::set<std::string> keys;
  for (const auto& t : trials) keys.insert(t.key());
  EXPECT_EQ(keys.size(), 16u);  // all distinct
  // Ids are sequential.
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(trials[i].id, i);
}

TEST(SearchSpace, EmptyAxisThrows) {
  SearchSpace s = small_space();
  s.optimizers.clear();
  EXPECT_THROW(grid_search(s), InvalidArgument);
  EXPECT_THROW(random_search(s, 5, 1), InvalidArgument);
}

TEST(SearchSpace, RandomSearchDeterministicInSeed) {
  const auto a = random_search(small_space(), 10, 42);
  const auto b = random_search(small_space(), 10, 42);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a[i].key(), b[i].key());
  const auto c = random_search(small_space(), 10, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < 10; ++i) any_diff |= a[i].key() != c[i].key();
  EXPECT_TRUE(any_diff);
}

TEST(SearchSpace, RandomSearchDrawsFromAxes) {
  const SearchSpace s = small_space();
  for (const auto& t : random_search(s, 50, 7)) {
    EXPECT_TRUE(t.epochs == 2 || t.epochs == 4);
    EXPECT_TRUE(t.batch == 20 || t.batch == 40);
    EXPECT_TRUE(t.optimizer == "sgd" || t.optimizer == "adam");
  }
}

TEST(SearchSpace, StratifiedSearchCoversAxesEvenly) {
  const auto trials = stratified_search(small_space(), 8, 3);
  ASSERT_EQ(trials.size(), 8u);
  // Each 2-value axis must appear exactly 4 times in 8 stratified draws.
  std::size_t epochs2 = 0, batch20 = 0;
  for (const auto& t : trials) {
    epochs2 += t.epochs == 2;
    batch20 += t.batch == 20;
  }
  EXPECT_EQ(epochs2, 4u);
  EXPECT_EQ(batch20, 4u);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, SingleJobStartsImmediately) {
  ClusterScheduler sched(4);
  const Schedule s = sched.schedule({JobRequest{Trial{}, 2, 100.0}});
  ASSERT_EQ(s.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(s.jobs[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(s.jobs[0].end_s, 100.0);
  EXPECT_DOUBLE_EQ(s.makespan_s, 100.0);
  EXPECT_EQ(s.jobs[0].rank_ids.size(), 2u);
}

TEST(Scheduler, ParallelJobsShareTheAllocation) {
  // Two 2-rank jobs on 4 ranks run concurrently.
  ClusterScheduler sched(4);
  const Schedule s = sched.schedule(
      {JobRequest{Trial{}, 2, 50.0}, JobRequest{Trial{}, 2, 50.0}});
  EXPECT_DOUBLE_EQ(s.makespan_s, 50.0);
  EXPECT_DOUBLE_EQ(s.utilization(), 1.0);
}

TEST(Scheduler, SerializesWhenAllocationIsFull) {
  ClusterScheduler sched(2);
  const Schedule s = sched.schedule(
      {JobRequest{Trial{}, 2, 30.0}, JobRequest{Trial{}, 2, 20.0}});
  EXPECT_DOUBLE_EQ(s.jobs[1].start_s, 30.0);
  EXPECT_DOUBLE_EQ(s.makespan_s, 50.0);
}

TEST(Scheduler, OversizedJobThrows) {
  ClusterScheduler sched(2);
  EXPECT_THROW(sched.schedule({JobRequest{Trial{}, 3, 1.0}}),
               InvalidArgument);
}

TEST(Scheduler, MakespanNeverBelowCriticalPathOrTotalWork) {
  // Property: makespan >= max job duration and >= busy/ranks.
  ClusterScheduler sched(3);
  std::vector<JobRequest> jobs;
  Rng rng(5);
  for (int i = 0; i < 20; ++i)
    jobs.push_back(JobRequest{Trial{}, 1 + rng.uniform_index(3),
                              rng.uniform(1.0, 40.0)});
  const Schedule s = sched.schedule(jobs);
  double max_dur = 0.0;
  for (const auto& j : jobs) max_dur = std::max(max_dur, j.seconds);
  EXPECT_GE(s.makespan_s, max_dur - 1e-9);
  EXPECT_GE(s.makespan_s, s.busy_rank_seconds / 3.0 - 1e-9);
  EXPECT_LE(s.utilization(), 1.0);
}

TEST(Scheduler, NoRankRunsTwoJobsAtOnce) {
  ClusterScheduler sched(4);
  std::vector<JobRequest> jobs;
  Rng rng(9);
  for (int i = 0; i < 15; ++i)
    jobs.push_back(JobRequest{Trial{}, 1 + rng.uniform_index(4),
                              rng.uniform(1.0, 10.0)});
  const Schedule s = sched.schedule(jobs);
  for (std::size_t a = 0; a < s.jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < s.jobs.size(); ++b) {
      const bool overlap_time = s.jobs[a].start_s < s.jobs[b].end_s - 1e-9 &&
                                s.jobs[b].start_s < s.jobs[a].end_s - 1e-9;
      if (!overlap_time) continue;
      for (std::size_t r : s.jobs[a].rank_ids)
        for (std::size_t r2 : s.jobs[b].rank_ids)
          ASSERT_NE(r, r2) << "rank double-booked";
    }
  }
}

TEST(Scheduler, LptNotWorseThanFifoOnSkewedLoad) {
  ClusterScheduler sched(2);
  std::vector<JobRequest> jobs{
      JobRequest{Trial{}, 1, 1.0}, JobRequest{Trial{}, 1, 1.0},
      JobRequest{Trial{}, 1, 1.0}, JobRequest{Trial{}, 1, 10.0}};
  const double fifo = sched.schedule(jobs).makespan_s;
  const double lpt = sched.schedule_lpt(jobs).makespan_s;
  EXPECT_LE(lpt, fifo + 1e-9);
  EXPECT_DOUBLE_EQ(lpt, 10.0);
}

// ---------------------------------------------------------------------------
// ResultsDb
// ---------------------------------------------------------------------------

TEST(ResultsDb, BestAndRankedRespectFailures) {
  ResultsDb db;
  db.record({Trial{0}, 0.8f, 0.2f, 10.0, 1000.0, false, ""});
  db.record({Trial{1}, 0.95f, 0.1f, 20.0, 4000.0, false, ""});
  db.record({Trial{2}, 0.0f, 0.0f, 0.0, 0.0, true, "OOM"});
  ASSERT_TRUE(db.best().has_value());
  EXPECT_EQ(db.best()->trial.id, 1u);
  const auto ranked = db.ranked();
  EXPECT_EQ(ranked.front().trial.id, 1u);
  EXPECT_TRUE(ranked.back().failed);
}

TEST(ResultsDb, BestPerEnergyPrefersEfficientTrials) {
  ResultsDb db;
  db.record({Trial{0}, 0.90f, 0.1f, 10.0, 1000.0, false, ""});   // 0.9/kJ
  db.record({Trial{1}, 0.95f, 0.1f, 20.0, 10000.0, false, ""});  // 0.095/kJ
  ASSERT_TRUE(db.best_per_energy().has_value());
  EXPECT_EQ(db.best_per_energy()->trial.id, 0u);
}

TEST(ResultsDb, EmptyDbHasNoBest) {
  ResultsDb db;
  EXPECT_FALSE(db.best().has_value());
  EXPECT_FALSE(db.best_per_energy().has_value());
}

TEST(ResultsDb, CsvRoundTripShape) {
  ResultsDb db;
  db.record({Trial{0, 8, 20, 0.001, "sgd"}, 0.9f, 0.3f, 12.5, 900.0,
             false, ""});
  const std::string csv = db.to_csv();
  EXPECT_NE(csv.find("trial_id,epochs,batch"), std::string::npos);
  EXPECT_NE(csv.find("0,8,20,0.001,sgd"), std::string::npos);
  const auto path = std::filesystem::temp_directory_path() / "resdb.csv";
  db.save_csv(path.string());
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

TEST(Campaign, RealTrainingCampaignFindsWorkingConfig) {
  CampaignConfig config;
  config.benchmark = BenchmarkId::kP1B2;
  config.mode = EvalMode::kRealTraining;
  config.scale = 0.0013;
  SearchSpace space;
  space.epochs = {1, 4};
  space.batches = {60};
  space.learning_rates = {0.001, 0.02};
  space.optimizers = {"rmsprop"};
  const ResultsDb db = run_campaign(config, grid_search(space));
  EXPECT_EQ(db.size(), 4u);
  ASSERT_TRUE(db.best().has_value());
  EXPECT_GT(db.best()->metric, 0.1f);
  // More epochs can't be worse than the 1-epoch trial at the same lr.
  float acc_e1 = 0, acc_e4 = 0;
  for (const auto& r : db.all()) {
    if (r.trial.learning_rate == 0.02 && r.trial.epochs == 1)
      acc_e1 = r.metric;
    if (r.trial.learning_rate == 0.02 && r.trial.epochs == 4)
      acc_e4 = r.metric;
  }
  EXPECT_GE(acc_e4, acc_e1 - 0.05f);
}

TEST(Campaign, SuccessiveHalvingFindsTheGoodLrCheaply) {
  CampaignConfig config;
  config.benchmark = BenchmarkId::kP1B2;
  config.mode = EvalMode::kRealTraining;
  config.scale = 0.0013;
  // Four lr candidates; only moderate rates can learn the 20-way problem.
  std::vector<Trial> candidates;
  std::size_t id = 0;
  for (double lr : {1e-6, 1e-4, 0.02, 5.0})
    candidates.push_back(Trial{id++, 1, 60, lr, "rmsprop"});
  const HalvingResult result =
      successive_halving(config, candidates, /*initial=*/1, /*max=*/8, 2);
  EXPECT_GE(result.rungs, 2u);
  EXPECT_FALSE(result.winner.failed);
  // The winner must be one of the sane learning rates.
  EXPECT_GT(result.winner.trial.learning_rate, 1e-6);
  EXPECT_LT(result.winner.trial.learning_rate, 5.0);
  EXPECT_GT(result.winner.metric, 0.3f);
  // The DB holds every rung evaluation (4 at rung 1, then fewer).
  EXPECT_GE(result.db.size(), 6u);
}

TEST(Campaign, SuccessiveHalvingValidatesArguments) {
  CampaignConfig config;
  config.mode = EvalMode::kSimulated;
  std::vector<Trial> one{Trial{}};
  EXPECT_THROW(successive_halving(config, one, 1, 8), InvalidArgument);
  config.mode = EvalMode::kRealTraining;
  EXPECT_THROW(successive_halving(config, {}, 1, 8), InvalidArgument);
  EXPECT_THROW(successive_halving(config, one, 0, 8), InvalidArgument);
  EXPECT_THROW(successive_halving(config, one, 4, 2), InvalidArgument);
  EXPECT_THROW(successive_halving(config, one, 1, 8, 1), InvalidArgument);
}

TEST(Campaign, SimulatedCampaignRecordsOomAsFailure) {
  CampaignConfig config;
  config.benchmark = BenchmarkId::kNT3;
  config.mode = EvalMode::kSimulated;
  config.ranks_per_trial = 6;
  SearchSpace space;
  space.epochs = {2};
  space.batches = {20, 50};  // 50 OOMs on the 16 GB V100 (paper §4.2.1)
  space.learning_rates = {0.001};
  space.optimizers = {"sgd"};
  const ResultsDb db = run_campaign(config, grid_search(space));
  ASSERT_EQ(db.size(), 2u);
  std::size_t failures = 0;
  for (const auto& r : db.all())
    if (r.failed) {
      ++failures;
      EXPECT_EQ(r.trial.batch, 50u);
      EXPECT_NE(r.failure_reason.find("16.0 GB"), std::string::npos);
    } else {
      EXPECT_GT(r.train_seconds, 0.0);
      EXPECT_GT(r.energy_joules, 0.0);
    }
  EXPECT_EQ(failures, 1u);
}

TEST(Campaign, PlanSkipsOomAndUsesAllocation) {
  CampaignConfig config;
  config.benchmark = BenchmarkId::kNT3;
  config.mode = EvalMode::kSimulated;
  config.ranks_per_trial = 6;
  SearchSpace space;
  space.epochs = {2, 4};
  space.batches = {20, 50};  // the 50s are dropped from the plan
  space.learning_rates = {0.001};
  space.optimizers = {"sgd"};
  const Schedule plan = plan_campaign(config, grid_search(space), 12);
  EXPECT_EQ(plan.jobs.size(), 2u);  // 4 grid points, 2 feasible
  EXPECT_GT(plan.makespan_s, 0.0);
  EXPECT_EQ(plan.total_ranks, 12u);
}

}  // namespace
}  // namespace candle::supervisor
