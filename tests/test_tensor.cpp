// Tests for src/tensor: Tensor, elementwise ops, conv1d/pool kernels.
// Gradient kernels are validated against finite differences; the blocked
// GEMM core has its own golden suite in test_gemm.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/conv.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace candle {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double stddev = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.values()) v = static_cast<float>(rng.normal(0, stddev));
  return t;
}

// ---------------------------------------------------------------------------
// Tensor basics
// ---------------------------------------------------------------------------

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_THROW((void)t.dim(3), InvalidArgument);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5, 5});
  for (float v : t.values()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({3}, 2.5f);
  EXPECT_FLOAT_EQ(t.sum(), 7.5f);
}

TEST(Tensor, FromValuesChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2}), InvalidArgument);
}

TEST(Tensor, At2D) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(t[1 * 3 + 2], 7.0f);
  EXPECT_THROW((void)t.at(2, 0), InvalidArgument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({2, 3});
  EXPECT_FLOAT_EQ(r.at(1, 0), 4.0f);
  EXPECT_THROW((void)t.reshaped({4, 2}), InvalidArgument);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({10, 20, 30});
  a += b;
  EXPECT_FLOAT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a[0], 2.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(a += b, InvalidArgument);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from({-1, 0, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_FLOAT_EQ(t.min(), -1.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.sq_norm(), 14.0f);
}

// ---------------------------------------------------------------------------
// Elementwise / bias / activations
// ---------------------------------------------------------------------------

TEST(Ops, AddSubMulScale) {
  const Tensor a = Tensor::from({1, 2});
  const Tensor b = Tensor::from({3, 5});
  EXPECT_FLOAT_EQ(add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(sub(b, a)[0], 2.0f);
  EXPECT_FLOAT_EQ(mul(a, b)[1], 10.0f);
  EXPECT_FLOAT_EQ(scale(a, -2.0f)[0], -2.0f);
}

TEST(Ops, AddBiasRows) {
  Tensor y({2, 3}, {0, 0, 0, 1, 1, 1});
  const Tensor bias = Tensor::from({10, 20, 30});
  add_bias_rows(y, bias);
  EXPECT_FLOAT_EQ(y.at(0, 2), 30.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 11.0f);
}

TEST(Ops, SumRows) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor s = sum_rows(a);
  EXPECT_FLOAT_EQ(s[0], 5.0f);
  EXPECT_FLOAT_EQ(s[2], 9.0f);
}

TEST(Ops, Axpy) {
  const Tensor x = Tensor::from({1, 2});
  Tensor y = Tensor::from({10, 10});
  axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y[1], 11.0f);
}

TEST(Ops, ReluForwardBackward) {
  const Tensor x = Tensor::from({-1, 0, 2});
  const Tensor y = relu(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  const Tensor dy = Tensor::from({1, 1, 1});
  const Tensor dx = relu_backward(dy, y);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(Ops, SigmoidValues) {
  const Tensor x = Tensor::from({0});
  EXPECT_FLOAT_EQ(sigmoid(x)[0], 0.5f);
  const Tensor big = Tensor::from({30});
  EXPECT_NEAR(sigmoid(big)[0], 1.0f, 1e-6f);
}

TEST(Ops, TanhMatchesStd) {
  const Tensor x = Tensor::from({-0.5f, 0.7f});
  const Tensor y = tanh_act(x);
  EXPECT_NEAR(y[0], std::tanh(-0.5f), 1e-6f);
  EXPECT_NEAR(y[1], std::tanh(0.7f), 1e-6f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(3);
  const Tensor x = random_tensor({4, 7}, rng, 3.0);
  const Tensor y = softmax_rows(x);
  for (std::size_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_GT(y.at(i, j), 0.0f);
      sum += y.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
  const Tensor x({1, 2}, {1000.0f, 999.0f});
  const Tensor y = softmax_rows(x);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_GT(y[0], y[1]);
}

TEST(Ops, ArgmaxRows) {
  const Tensor x({2, 3}, {0, 5, 1, 9, 2, 3});
  const auto idx = argmax_rows(x);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

// ---------------------------------------------------------------------------
// Conv1D / pooling — forward shapes and finite-difference gradients
// ---------------------------------------------------------------------------

TEST(Conv1d, OutLength) {
  EXPECT_EQ(conv1d_out_length(10, 3, 1), 8u);
  EXPECT_EQ(conv1d_out_length(10, 3, 2), 4u);
  EXPECT_EQ(conv1d_out_length(3, 3, 1), 1u);
  EXPECT_THROW(conv1d_out_length(2, 3, 1), InvalidArgument);
}

TEST(Conv1d, ForwardKnownValues) {
  Tensor x({1, 4, 1}, {1, 2, 3, 4});
  Tensor w({2, 1, 1}, {1, 1});  // sum of adjacent elements
  Tensor b({1}, std::vector<float>{0.5f});
  const Tensor y = conv1d_forward(x, w, b, 1);
  ASSERT_EQ(y.shape(), (Shape{1, 3, 1}));
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_FLOAT_EQ(y[1], 5.5f);
  EXPECT_FLOAT_EQ(y[2], 7.5f);
}

TEST(Conv1d, ForwardMultiChannelSpotCheck) {
  Rng rng(4);
  const Tensor x = random_tensor({2, 8, 3}, rng);
  const Tensor w = random_tensor({3, 3, 5}, rng);
  const Tensor b = random_tensor({5}, rng);
  const Tensor y = conv1d_forward(x, w, b, 2);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 5}));
  double acc = b[1];
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t c = 0; c < 3; ++c)
      acc += static_cast<double>(x[(1 * 8 + (2 * 2 + k)) * 3 + c]) *
             w[(k * 3 + c) * 5 + 1];
  EXPECT_NEAR(y[(1 * 3 + 2) * 5 + 1], acc, 1e-4);
}

TEST(Conv1d, BackwardMatchesFiniteDifference) {
  Rng rng(5);
  Tensor x = random_tensor({2, 7, 2}, rng, 0.5);
  Tensor w = random_tensor({3, 2, 4}, rng, 0.5);
  Tensor b = random_tensor({4}, rng, 0.1);
  const std::size_t stride = 2;

  auto loss = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    return static_cast<double>(conv1d_forward(xx, ww, bb, stride).sum());
  };
  const Tensor y = conv1d_forward(x, w, b, stride);
  const Tensor dy(y.shape(), 1.0f);
  Tensor dx(x.shape()), dw(w.shape()), db(b.shape());
  conv1d_backward(x, w, dy, stride, dx, dw, db);

  const float eps = 1e-2f;
  for (std::size_t i : {std::size_t{0}, w.numel() / 2, w.numel() - 1}) {
    Tensor wp = w;
    wp[i] += eps;
    Tensor wm = w;
    wm[i] -= eps;
    const double fd = (loss(x, wp, b) - loss(x, wm, b)) / (2.0 * eps);
    EXPECT_NEAR(dw[i], fd, 5e-2) << "dW[" << i << "]";
  }
  for (std::size_t i : {std::size_t{0}, x.numel() / 2, x.numel() - 1}) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const double fd = (loss(xp, w, b) - loss(xm, w, b)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], fd, 5e-2) << "dX[" << i << "]";
  }
  for (std::size_t i = 0; i < b.numel(); ++i) {
    Tensor bp = b;
    bp[i] += eps;
    Tensor bm = b;
    bm[i] -= eps;
    const double fd = (loss(x, w, bp) - loss(x, w, bm)) / (2.0 * eps);
    EXPECT_NEAR(db[i], fd, 5e-2) << "dB[" << i << "]";
  }
}

TEST(MaxPool1d, ForwardSelectsMaxAndRecordsArgmax) {
  Tensor x({1, 6, 1}, {1, 5, 2, 8, 3, 4});
  std::vector<std::size_t> argmax;
  const Tensor y = maxpool1d_forward(x, 2, 2, argmax);
  ASSERT_EQ(y.shape(), (Shape{1, 3, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
  EXPECT_FLOAT_EQ(y[2], 4.0f);
  EXPECT_EQ(argmax[0], 1u);
  EXPECT_EQ(argmax[1], 3u);
  EXPECT_EQ(argmax[2], 5u);
}

TEST(MaxPool1d, BackwardRoutesToArgmax) {
  Tensor x({1, 4, 1}, {1, 9, 2, 3});
  std::vector<std::size_t> argmax;
  const Tensor y = maxpool1d_forward(x, 2, 2, argmax);
  const Tensor dy(y.shape(), 1.0f);
  const Tensor dx = maxpool1d_backward(dy, x.shape(), argmax);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 1.0f);
}

TEST(MaxPool1d, PerChannelIndependence) {
  Tensor x({1, 2, 2}, {1, 8, 9, 2});
  std::vector<std::size_t> argmax;
  const Tensor y = maxpool1d_forward(x, 2, 2, argmax);
  EXPECT_FLOAT_EQ(y[0], 9.0f);  // channel 0: max(1, 9)
  EXPECT_FLOAT_EQ(y[1], 8.0f);  // channel 1: max(8, 2)
}

TEST(GlobalAvgPool, ForwardAndBackward) {
  Tensor x({1, 3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor y = global_avgpool1d_forward(x);
  ASSERT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
  const Tensor dy({1, 2}, {3.0f, 6.0f});
  const Tensor dx = global_avgpool1d_backward(dy, x.shape());
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[1], 2.0f);
}

}  // namespace
}  // namespace candle
