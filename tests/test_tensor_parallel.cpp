// Tests for channel/filter tensor parallelism (nn/parallelism.h + the
// sharded Dense/Conv1D paths + the Model compile-time planner + the
// rank-local gradient mask through hvd): plan selection, the
// unsharded-equivalence correctness bar (bit-exact at one rank, tight
// tolerance at 2/4 ranks), composition with overlap/prefetch/compressed
// wires, and a TSan-targeted stress case.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "candle/models.h"
#include "comm/communicator.h"
#include "common/error.h"
#include "common/parallel.h"
#include "hvd/broadcast.h"
#include "hvd/context.h"
#include "hvd/distributed_optimizer.h"
#include "hvd/fusion.h"
#include "nn/dataset.h"
#include "nn/model.h"
#include "nn/parallelism.h"

namespace candle {
namespace {

using nn::ChannelShard;
using nn::LayerParallelism;
using nn::ParallelismMode;
using nn::ParallelismOptions;

/// Restores the ambient pool width when a test scope ends.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n)
      : saved_(parallel::num_threads()) {
    parallel::set_num_threads(n);
  }
  ~ThreadCountGuard() { parallel::set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  std::size_t saved_;
};

// ---------------------------------------------------------------------------
// Planner primitives
// ---------------------------------------------------------------------------

TEST(ParallelismPlan, ShardOffsetCoversChannelsContiguously) {
  // 6 channels over 4 ranks: blocks 1,2,1,2 — contiguous, exhaustive.
  const std::vector<std::size_t> expected{0, 1, 3, 4, 6};
  for (std::size_t g = 0; g <= 4; ++g)
    EXPECT_EQ(nn::shard_offset(g, 6, 4), expected[g]);
  // Every channel lands in exactly one block for a few odd sizes.
  for (std::size_t world : {1u, 2u, 3u, 5u}) {
    for (std::size_t channels : {1u, 7u, 32u}) {
      EXPECT_EQ(nn::shard_offset(0, channels, world), 0u);
      EXPECT_EQ(nn::shard_offset(world, channels, world), channels);
      for (std::size_t g = 0; g < world; ++g)
        EXPECT_LE(nn::shard_offset(g, channels, world),
                  nn::shard_offset(g + 1, channels, world));
    }
  }
}

TEST(ParallelismPlan, ParseAndNameRoundTrip) {
  EXPECT_EQ(nn::parse_parallelism_mode("data"), ParallelismMode::kData);
  EXPECT_EQ(nn::parse_parallelism_mode("channel"), ParallelismMode::kChannel);
  EXPECT_EQ(nn::parse_parallelism_mode("auto"), ParallelismMode::kAuto);
  for (ParallelismMode m : {ParallelismMode::kData, ParallelismMode::kChannel,
                            ParallelismMode::kAuto})
    EXPECT_EQ(nn::parse_parallelism_mode(nn::parallelism_mode_name(m)), m);
  EXPECT_THROW((void)nn::parse_parallelism_mode("tensor"), InvalidArgument);
}

TEST(ParallelismPlan, AutoShardsWeightHeavyLayersOnly) {
  // A weight-heavy wide Dense (256x256 weights vs batch-16 activations)
  // shards; a narrow head whose activations dominate stays replicated.
  comm::World::run(2, [](comm::Communicator& c) {
    hvd::Context ctx(c);
    nn::Model model;
    model.add<nn::Dense>(256, nn::Act::kRelu);
    model.add<nn::Dense>(4, nn::Act::kSoftmax);
    ParallelismOptions popt;
    popt.mode = ParallelismMode::kAuto;
    popt.comm = &c;
    popt.batch_hint = 16;
    model.compile({256},
                  std::make_unique<hvd::DistributedOptimizer>(
                      nn::make_optimizer("sgd", 0.01), ctx,
                      hvd::FusionOptions{}),
                  nn::make_loss("categorical_crossentropy"), 7, popt);
    const nn::ParallelismPlan& plan = model.parallelism_plan();
    ASSERT_EQ(plan.per_layer.size(), 2u);
    EXPECT_EQ(plan.per_layer[0], LayerParallelism::kChannel);
    EXPECT_EQ(plan.per_layer[1], LayerParallelism::kData);
    EXPECT_TRUE(plan.any_channel());
    EXPECT_EQ(plan.channel_layers(), 1u);
    // Mask covers the flat param order: {w0, b0} local, {w1, b1} replicated.
    const std::vector<std::uint8_t>& mask = model.rank_local_mask();
    ASSERT_EQ(mask.size(), 4u);
    EXPECT_EQ(mask[0], 1u);
    EXPECT_EQ(mask[1], 1u);
    EXPECT_EQ(mask[2], 0u);
    EXPECT_EQ(mask[3], 0u);
    // The sharded layer owns exactly its 1/P column slice.
    EXPECT_EQ(model.parameters()[0]->numel(), 256u * 128u);
    EXPECT_EQ(model.parameters()[1]->numel(), 128u);
  });
}

TEST(ParallelismPlan, ForcedChannelKeepsTooNarrowLayersReplicated) {
  // A 2-unit softmax head cannot split over 4 ranks: forced channel mode
  // falls back to data parallelism for that layer instead of throwing.
  comm::World::run(4, [](comm::Communicator& c) {
    hvd::Context ctx(c);
    nn::Model model;
    model.add<nn::Dense>(32, nn::Act::kRelu);
    model.add<nn::Dense>(2, nn::Act::kSoftmax);
    ParallelismOptions popt;
    popt.mode = ParallelismMode::kChannel;
    popt.comm = &c;
    model.compile({16},
                  std::make_unique<hvd::DistributedOptimizer>(
                      nn::make_optimizer("sgd", 0.01), ctx,
                      hvd::FusionOptions{}),
                  nn::make_loss("categorical_crossentropy"), 7, popt);
    const nn::ParallelismPlan& plan = model.parallelism_plan();
    ASSERT_EQ(plan.per_layer.size(), 2u);
    EXPECT_EQ(plan.per_layer[0], LayerParallelism::kChannel);
    EXPECT_EQ(plan.per_layer[1], LayerParallelism::kData);
  });
}

TEST(ParallelismPlan, DataModeLeavesNoMaskOrShards) {
  nn::Model model;
  model.add<nn::Dense>(64, nn::Act::kRelu);
  model.add<nn::Dense>(8, nn::Act::kSoftmax);
  model.compile({32}, nn::make_optimizer("sgd", 0.01),
                nn::make_loss("categorical_crossentropy"), 7);
  EXPECT_FALSE(model.parallelism_plan().any_channel());
  EXPECT_TRUE(model.rank_local_mask().empty());
  for (nn::Layer* l : model.layers()) EXPECT_FALSE(l->channel_sharded());
}

TEST(ParallelismPlan, ShardAfterBuildOrOnUnsupportedLayerThrows) {
  ChannelShard shard;
  shard.rank = 0;
  shard.world = 1;
  {
    nn::Dense d(8);
    Rng rng(1);
    (void)d.build({4}, rng);
    EXPECT_THROW(d.apply_channel_shard(shard), InvalidArgument);
  }
  {
    nn::MaxPool1D pool(2);
    EXPECT_THROW(pool.apply_channel_shard(shard), InvalidArgument);
  }
  {
    // units < world is rejected at the layer level (the planner avoids
    // this; direct callers get a clear error).
    nn::Dense d(2);
    ChannelShard wide;
    wide.rank = 0;
    wide.world = 4;
    EXPECT_THROW(d.apply_channel_shard(wide), InvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Training equivalence: channel-parallel vs unsharded
// ---------------------------------------------------------------------------

struct TpOutcome {
  std::vector<std::vector<float>> losses;  // per-rank per-epoch losses
  std::vector<float> predictions;          // rank-0 predict() on the train x
  std::vector<std::vector<float>> params;  // per-rank flattened (local) params
  std::size_t reduce_scatter_calls = 0;    // rank 0
  std::size_t allgather_calls = 0;         // rank 0
  std::size_t channel_layers = 0;
};

nn::Dataset mini_train_set(BenchmarkId id, const ScaledGeometry& geometry) {
  const BenchmarkData data = make_benchmark_data(id, geometry, /*seed=*/11);
  const std::size_t n = std::min<std::size_t>(64, data.train.size());
  return nn::Dataset{nn::take_rows(data.train.x, 0, n),
                     nn::take_rows(data.train.y, 0, n)};
}

nn::FitOptions mini_fit_options(BenchmarkId id, std::size_t epochs,
                                bool prefetch) {
  nn::FitOptions fit;
  fit.epochs = epochs;
  fit.batch_size = 16;
  fit.shuffle = false;  // identical batch stream on every rank
  fit.classification = benchmark_is_classification(id);
  fit.prefetch = prefetch;
  return fit;
}

/// Unsharded single-process reference: same seed, same data, same batch
/// stream, plain (non-distributed) optimizer.
TpOutcome run_reference_fit(BenchmarkId id, std::size_t epochs = 2) {
  const ScaledGeometry geometry = scaled_geometry(id, 0.002);
  const nn::Dataset train = mini_train_set(id, geometry);
  nn::Model model = build_model(id, geometry);
  model.compile({geometry.features},
                nn::make_optimizer(benchmark_optimizer(id), 0.01),
                nn::make_loss(benchmark_loss(id)), /*seed=*/5);
  const nn::History history =
      model.fit(train, mini_fit_options(id, epochs, false));
  TpOutcome out;
  out.losses.resize(1);
  for (const auto& e : history.epochs) out.losses[0].push_back(e.loss);
  const Tensor pred = model.predict(train.x);
  out.predictions.assign(pred.data(), pred.data() + pred.numel());
  out.params.resize(1);
  for (Tensor* p : model.parameters())
    out.params[0].insert(out.params[0].end(), p->data(),
                         p->data() + p->numel());
  return out;
}

/// Channel-parallel distributed fit. Uses a uniform seed (the sharded build
/// slices one shared init) and the rank-local-aware broadcast hook.
TpOutcome run_channel_fit(BenchmarkId id, std::size_t ranks,
                          ParallelismMode mode, bool overlap = false,
                          bool prefetch = false, std::size_t epochs = 2,
                          comm::WireDtype wire = comm::WireDtype::kFp32) {
  const ScaledGeometry geometry = scaled_geometry(id, 0.002);
  const nn::Dataset train = mini_train_set(id, geometry);
  TpOutcome out;
  out.losses.resize(ranks);
  out.params.resize(ranks);
  const auto stats = comm::World::run(ranks, [&](comm::Communicator& c) {
    hvd::Context ctx(c);
    nn::Model model = build_model(id, geometry);
    hvd::FusionOptions fusion;
    fusion.threshold_bytes = 4 * 1024;  // several buckets per step
    fusion.overlap = overlap;
    fusion.wire_dtype = wire;
    auto opt = std::make_unique<hvd::DistributedOptimizer>(
        nn::make_optimizer(benchmark_optimizer(id), 0.01), ctx, fusion);
    hvd::DistributedOptimizer* dist = opt.get();
    ParallelismOptions popt;
    popt.mode = mode;
    popt.comm = &c;
    popt.batch_hint = 16;
    popt.wire_dtype = wire;
    model.compile({geometry.features}, std::move(opt),
                  nn::make_loss(benchmark_loss(id)), /*seed=*/5, popt);
    if (overlap) dist->enable_overlap(model);

    hvd::BroadcastGlobalVariablesHook broadcast(ctx, 0);
    std::vector<nn::Callback*> callbacks{&broadcast};
    const nn::History history =
        model.fit(train, mini_fit_options(id, epochs, prefetch), callbacks);

    for (const auto& e : history.epochs)
      out.losses[c.rank()].push_back(e.loss);
    for (Tensor* p : model.parameters())
      out.params[c.rank()].insert(out.params[c.rank()].end(), p->data(),
                                  p->data() + p->numel());
    // Every rank must run predict: a sharded forward is a collective
    // (output allgather), so a lone caller would deadlock the world.
    const Tensor pred = model.predict(train.x);
    if (c.rank() == 0) {
      out.predictions.assign(pred.data(), pred.data() + pred.numel());
      out.channel_layers = model.parallelism_plan().channel_layers();
    }
  });
  out.reduce_scatter_calls = stats[0].reduce_scatter_calls;
  out.allgather_calls = stats[0].allgather_calls;
  return out;
}

void expect_losses_bit_equal_across_ranks(const TpOutcome& o) {
  for (std::size_t r = 1; r < o.losses.size(); ++r) {
    ASSERT_EQ(o.losses[r].size(), o.losses[0].size());
    for (std::size_t e = 0; e < o.losses[0].size(); ++e)
      ASSERT_EQ(o.losses[r][e], o.losses[0][e])
          << "rank " << r << " epoch " << e;
  }
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  double rel, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a[i], b[i], rel * std::abs(b[i]) + rel)
        << what << " [" << i << "]";
}

TEST(ChannelParallel, SingleRankIsBitIdenticalToUnsharded) {
  // At world 1 the sharded layers take the identical unsharded code path
  // (same fused kernels, same init): weights, losses, and predictions
  // must match bit for bit.
  for (BenchmarkId id : {BenchmarkId::kNT3, BenchmarkId::kP1B1}) {
    SCOPED_TRACE(benchmark_name(id));
    const TpOutcome ref = run_reference_fit(id);
    const TpOutcome tp =
        run_channel_fit(id, 1, ParallelismMode::kChannel);
    ASSERT_EQ(tp.params[0].size(), ref.params[0].size());
    EXPECT_EQ(0, std::memcmp(tp.params[0].data(), ref.params[0].data(),
                             ref.params[0].size() * sizeof(float)));
    ASSERT_EQ(tp.losses[0].size(), ref.losses[0].size());
    for (std::size_t e = 0; e < ref.losses[0].size(); ++e)
      EXPECT_EQ(tp.losses[0][e], ref.losses[0][e]) << "epoch " << e;
    ASSERT_EQ(tp.predictions.size(), ref.predictions.size());
    EXPECT_EQ(0, std::memcmp(tp.predictions.data(), ref.predictions.data(),
                             ref.predictions.size() * sizeof(float)));
  }
}

TEST(ChannelParallel, MultiRankMatchesUnshardedWithinTolerance) {
  // Sharded training changes only floating-point summation order (the
  // backward dx partials are ring-reduced instead of one local GEMM), so
  // per-epoch losses and final predictions stay within a tight relative
  // band of the unsharded run — and all ranks stay bit-identical to each
  // other, since every rank steps the same replicated batch.
  for (BenchmarkId id : {BenchmarkId::kNT3, BenchmarkId::kP1B1}) {
    const TpOutcome ref = run_reference_fit(id);
    for (std::size_t ranks : {2u, 4u}) {
      for (std::size_t threads : {1u, 4u}) {
        SCOPED_TRACE(std::string(benchmark_name(id)) + " ranks=" +
                     std::to_string(ranks) + " threads=" +
                     std::to_string(threads));
        ThreadCountGuard guard(threads);
        const TpOutcome tp =
            run_channel_fit(id, ranks, ParallelismMode::kChannel);
        EXPECT_GT(tp.channel_layers, 0u);
        EXPECT_GT(tp.reduce_scatter_calls, 0u);
        EXPECT_GT(tp.allgather_calls, 0u);
        expect_losses_bit_equal_across_ranks(tp);
        expect_close(tp.losses[0], ref.losses[0], 1e-5, "losses");
        expect_close(tp.predictions, ref.predictions, 1e-5, "predictions");
      }
    }
  }
}

TEST(ChannelParallel, ShardedWeightSlicesReassembleTheFullInit) {
  // Before any training step, each rank's first-layer weight slice must be
  // exactly the corresponding columns of the unsharded init (the sharded
  // build draws the full init from the shared stream, then slices).
  const BenchmarkId id = BenchmarkId::kP1B1;
  const ScaledGeometry geometry = scaled_geometry(id, 0.002);
  nn::Model ref = build_model(id, geometry);
  ref.compile({geometry.features},
              nn::make_optimizer(benchmark_optimizer(id), 0.01),
              nn::make_loss(benchmark_loss(id)), /*seed=*/5);
  const Tensor& wfull = *ref.parameters()[0];  // (F, h1)
  const std::size_t in = wfull.dim(0), h1 = wfull.dim(1);
  const std::size_t ranks = 4;
  comm::World::run(ranks, [&](comm::Communicator& c) {
    hvd::Context ctx(c);
    nn::Model model = build_model(id, geometry);
    ParallelismOptions popt;
    popt.mode = ParallelismMode::kChannel;
    popt.comm = &c;
    popt.batch_hint = 16;
    model.compile({geometry.features},
                  std::make_unique<hvd::DistributedOptimizer>(
                      nn::make_optimizer(benchmark_optimizer(id), 0.01), ctx,
                      hvd::FusionOptions{}),
                  nn::make_loss(benchmark_loss(id)), /*seed=*/5, popt);
    const Tensor& wlocal = *model.parameters()[0];
    const std::size_t c0 = nn::shard_offset(c.rank(), h1, ranks);
    const std::size_t cols = nn::shard_offset(c.rank() + 1, h1, ranks) - c0;
    ASSERT_EQ(wlocal.numel(), in * cols);
    for (std::size_t r = 0; r < in; ++r)
      ASSERT_EQ(0, std::memcmp(wlocal.data() + r * cols,
                               wfull.data() + r * h1 + c0,
                               cols * sizeof(float)))
          << "rank " << c.rank() << " row " << r;
  });
}

TEST(ChannelParallel, OverlapAndPrefetchComposeBitExactly) {
  // Overlap moves only the replicated-gradient reduction onto the comm
  // thread and prefetch only copies batches earlier: composed with channel
  // sharding, both must reproduce the synchronous channel run bit for bit.
  for (std::size_t ranks : {2u, 4u}) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    const TpOutcome plain = run_channel_fit(BenchmarkId::kNT3, ranks,
                                            ParallelismMode::kChannel);
    const TpOutcome composed =
        run_channel_fit(BenchmarkId::kNT3, ranks, ParallelismMode::kChannel,
                        /*overlap=*/true, /*prefetch=*/true);
    for (std::size_t r = 0; r < ranks; ++r) {
      ASSERT_EQ(plain.params[r].size(), composed.params[r].size());
      ASSERT_EQ(0, std::memcmp(plain.params[r].data(),
                               composed.params[r].data(),
                               plain.params[r].size() * sizeof(float)))
          << "rank " << r;
      ASSERT_EQ(plain.losses[r], composed.losses[r]) << "rank " << r;
    }
  }
}

TEST(ChannelParallel, CompressedWireTracksFp32Loss) {
  // fp16/bf16 activation gathers and gradient reductions must keep channel
  // training on track: same loose band the data-parallel compressed tests
  // pin (codec error compounds through the optimizer across steps).
  const TpOutcome fp32 = run_channel_fit(
      BenchmarkId::kP1B1, 2, ParallelismMode::kChannel, false, false, 3);
  for (comm::WireDtype wire :
       {comm::WireDtype::kFp16, comm::WireDtype::kBf16}) {
    SCOPED_TRACE(comm::wire_dtype_name(wire));
    const TpOutcome q =
        run_channel_fit(BenchmarkId::kP1B1, 2, ParallelismMode::kChannel,
                        false, false, 3, wire);
    expect_losses_bit_equal_across_ranks(q);
    ASSERT_EQ(q.losses[0].size(), fp32.losses[0].size());
    for (std::size_t e = 0; e < q.losses[0].size(); ++e) {
      EXPECT_TRUE(std::isfinite(q.losses[0][e]));
      EXPECT_NEAR(q.losses[0][e], fp32.losses[0][e],
                  0.05 * std::abs(fp32.losses[0][e]) + 1e-4)
          << "epoch " << e;
    }
  }
}

TEST(ChannelParallel, AutoModeMatchesReferenceToo) {
  // kAuto picks a mixed plan (some layers sharded, some replicated);
  // training must still track the unsharded reference.
  const TpOutcome ref = run_reference_fit(BenchmarkId::kP1B1);
  const TpOutcome tp =
      run_channel_fit(BenchmarkId::kP1B1, 2, ParallelismMode::kAuto);
  expect_losses_bit_equal_across_ranks(tp);
  expect_close(tp.losses[0], ref.losses[0], 1e-5, "losses");
  expect_close(tp.predictions, ref.predictions, 1e-5, "predictions");
}

TEST(ChannelParallel, TsanStressShardedOverlapManySteps) {
  // TSan-targeted: 4 rank threads x 4 pool threads drive sharded forward
  // allgathers, backward reduce-scatters, and overlapped replicated-bucket
  // reductions for many steps on a wide MLP.
  const std::size_t ranks = 4;
  ThreadCountGuard guard(4);
  comm::World::run(ranks, [&](comm::Communicator& c) {
    hvd::Context ctx(c);
    nn::Model model;
    model.add<nn::Dense>(96, nn::Act::kRelu);
    model.add<nn::Dense>(96, nn::Act::kTanh);
    model.add<nn::Dense>(4, nn::Act::kSoftmax);
    hvd::FusionOptions fusion;
    fusion.threshold_bytes = 256;
    fusion.overlap = true;
    auto opt = std::make_unique<hvd::DistributedOptimizer>(
        nn::make_optimizer("sgd", 0.05), ctx, fusion);
    hvd::DistributedOptimizer* dist = opt.get();
    ParallelismOptions popt;
    popt.mode = ParallelismMode::kChannel;
    popt.comm = &c;
    popt.batch_hint = 8;
    model.compile({24}, std::move(opt),
                  nn::make_loss("categorical_crossentropy"), /*seed=*/3,
                  popt);
    dist->enable_overlap(model);

    Rng rng(17);  // uniform seed: identical batches on every rank
    Tensor x({8, 24}), y({8, 4}, 0.0f);
    for (float& v : x.values()) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (std::size_t i = 0; i < 8; ++i)
      y.data()[i * 4 + i % 4] = 1.0f;
    float loss = 0.0f;
    for (int step = 0; step < 30; ++step) loss = model.train_on_batch(x, y);
    EXPECT_TRUE(std::isfinite(loss));
  });
}

}  // namespace
}  // namespace candle
