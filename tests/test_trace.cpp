// Tests for src/trace: the Horovod-style chrome://tracing timeline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "common/error.h"
#include "trace/timeline.h"

namespace candle::trace {
namespace {

TEST(Timeline, RecordsAndCounts) {
  Timeline tl;
  tl.record(kDataLoading, "io", 0, 0.0, 10.0);
  tl.record(kMpiBroadcast, "broadcast", 1, 10.0, 2.0);
  EXPECT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.events()[0].name, kDataLoading);
}

TEST(Timeline, TotalDurationFiltersByNameAndRank) {
  Timeline tl;
  tl.record(kNegotiateBroadcast, "broadcast", 0, 0.0, 43.72);
  tl.record(kNegotiateBroadcast, "broadcast", 0, 50.0, 1.0);
  tl.record(kNegotiateBroadcast, "broadcast", 1, 0.0, 99.0);
  tl.record(kNcclAllreduce, "allreduce", 0, 60.0, 5.0);
  EXPECT_NEAR(tl.total_duration(kNegotiateBroadcast, 0), 44.72, 1e-9);
  EXPECT_NEAR(tl.total_duration(kNegotiateBroadcast, 1), 99.0, 1e-9);
  EXPECT_NEAR(tl.total_duration(kNcclAllreduce, 0), 5.0, 1e-9);
  EXPECT_EQ(tl.total_duration("MISSING", 0), 0.0);
}

TEST(Timeline, SpanEnd) {
  Timeline tl;
  tl.record("a", "x", 0, 1.0, 2.0);
  tl.record("b", "x", 0, 0.5, 10.0);
  EXPECT_NEAR(tl.span_end(), 10.5, 1e-9);
}

TEST(Timeline, ChromeJsonIsWellFormed) {
  Timeline tl;
  tl.record(kNcclAllreduce, "allreduce", 3, 1.5, 0.25);
  const std::string json = tl.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1500000.0"), std::string::npos);   // µs
  EXPECT_NE(json.find("\"dur\": 250000.0"), std::string::npos);
  EXPECT_NE(json.find(kNcclAllreduce), std::string::npos);
}

TEST(Timeline, WriteChromeJsonRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "tl_test.json";
  Timeline tl;
  tl.record(kMpiBroadcast, "broadcast", 0, 0.0, 4.65);
  tl.write_chrome_json(path.string());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), {});
  EXPECT_EQ(content, tl.to_chrome_json());
  std::filesystem::remove(path);
}

TEST(Timeline, WriteToBadPathThrows) {
  Timeline tl;
  tl.record("a", "x", 0, 0, 1);
  EXPECT_THROW(tl.write_chrome_json("/nonexistent_zz/t.json"), IoError);
}

TEST(Timeline, ConcurrentRecordingIsSafe) {
  Timeline tl;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&tl, t] {
      for (int i = 0; i < 100; ++i)
        tl.record("ev", "cat", static_cast<std::size_t>(t), i, 0.5);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tl.size(), 800u);
}

TEST(Timeline, EmptyTimelineJson) {
  Timeline tl;
  EXPECT_EQ(tl.to_chrome_json(), "[\n]\n");
  EXPECT_EQ(tl.span_end(), 0.0);
}

}  // namespace
}  // namespace candle::trace
