"""Check registry for candle-analyze.

Each check is a callable Project -> list[Finding]. Check ids (used in
findings and `// candle-analyze: allow(<id>)` suppressions):

  lock-level               mutex without a CANDLE_LOCK_LEVEL / raw std::mutex
  lock-hierarchy           out-of-order acquisition (direct or via calls)
  determinism-unordered    iteration over an unordered container
  determinism-rng          std::rand / random_device / time-seeded RNG
  determinism-fp-reduction FP accumulation into captured state in parallel_for
  determinism-thread-local thread_local read inside a parallel_for body
  thread-site              unsanctioned std::thread/async/detach
  condvar-wait             condition-variable wait without a predicate
  tensor-subscript         Tensor operator[] outside hot paths (use at())
  span-lifetime            span outliving its MappedFrame
"""

from checks.api_policy import check_api_policy
from checks.determinism import check_determinism
from checks.lock_hierarchy import check_lock_hierarchy
from checks.thread_sites import check_thread_sites

ALL_CHECKS = (
    check_lock_hierarchy,
    check_determinism,
    check_thread_sites,
    check_api_policy,
)

CHECK_IDS = (
    "lock-level",
    "lock-hierarchy",
    "determinism-unordered",
    "determinism-rng",
    "determinism-fp-reduction",
    "determinism-thread-local",
    "thread-site",
    "condvar-wait",
    "tensor-subscript",
    "span-lifetime",
)
