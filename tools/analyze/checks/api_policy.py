"""API-policy checks.

`tensor-subscript`: Tensor::operator[] is unchecked by design (the hot
kernels in src/tensor, src/nn, src/hvd and the benches live on it); all
other code must use the bounds-checked at() so indexing bugs surface as
diagnostics rather than silent reads.

`span-lifetime`: MappedFrame::row()/payload() return spans into the mmap
owned by the frame; a span taken from a temporary frame or returned from
the function that owns the frame dangles as soon as the frame unmaps.
"""

from __future__ import annotations

from model import Finding, Project

#: Hot paths where unchecked operator[] is the point.
_HOT = ("src/tensor/", "src/nn/", "src/hvd/", "bench/")


def check_api_policy(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for fm in project.files:
        hot = any(fm.path.startswith(p) for p in _HOT)
        if not hot:
            for sub in fm.subscripts:
                if sub.base in fm.tensors:
                    findings.append(Finding(
                        "tensor-subscript", fm.path, sub.line,
                        f"Tensor '{sub.base}' indexed with operator[] "
                        f"outside the hot paths — use at() for "
                        f"bounds-checked access"))
        for esc in fm.span_escapes:
            findings.append(Finding(
                "span-lifetime", fm.path, esc.line,
                f"{esc.detail}: the span dangles once the MappedFrame "
                f"unmaps — copy the row or pass the frame down"))
    return findings
