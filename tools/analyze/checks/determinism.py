"""Determinism checks for the numeric core (src/tensor, src/nn, src/hvd,
src/comm).

The paper's benchmarks are validated by comparing losses across runs and
thread counts, so the numeric core must be bitwise deterministic for a
fixed CANDLE_NUM_THREADS:

  determinism-unordered    iterating an unordered container yields a
                           platform/seed-dependent order;
  determinism-rng          std::rand / std::random_device / time-seeded
                           engines break run-to-run reproducibility
                           (candle threads seeds deterministically);
  determinism-fp-reduction floating-point accumulation into captured state
                           inside a parallel_for body makes the result
                           depend on chunk interleaving — use
                           parallel_reduce (fixed chunk tree) or the gemm
                           kernels;
  determinism-thread-local reading a thread_local inside a parallel_for
                           body observes per-worker state — hoist a
                           pointer before entering the region (the
                           pack-buffer idiom in tensor/gemm.cpp).
"""

from __future__ import annotations

from model import FileModel, Finding, Project

_SCOPE = ("src/tensor/", "src/nn/", "src/hvd/", "src/comm/", "src/serve/")

#: gemm owns its FP-reduction order by construction (fixed blocking);
#: exempt from the reduction rule only.
_FP_EXEMPT = ("src/tensor/gemm.cpp", "src/tensor/gemm.h")

_SEEDY_ENGINES = {"mt19937", "mt19937_64", "default_random_engine",
                  "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48"}
_SEED_SOURCES = {"time", "now", "clock", "random_device", "rdtsc"}


def _in_scope(path: str) -> bool:
    return any(path.startswith(p) for p in _SCOPE)


def check_determinism(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for fm in project.files:
        if not _in_scope(fm.path):
            continue
        _unordered_iteration(fm, findings)
        _rng(fm, findings)
        if fm.path not in _FP_EXEMPT:
            _fp_reduction(fm, findings)
        _thread_local_reads(fm, findings)
    return findings


def _unordered_iteration(fm: FileModel, out: list[Finding]) -> None:
    for rf in fm.range_fors:
        if rf.base in fm.unordered:
            out.append(Finding(
                "determinism-unordered", fm.path, rf.line,
                f"iterating unordered container '{rf.base}': element order "
                f"is unspecified — iterate a sorted key list or use "
                f"std::map"))
    for fn in fm.functions:
        for call in fn.calls:
            if call.name == "begin" and call.receiver in fm.unordered:
                out.append(Finding(
                    "determinism-unordered", fm.path, call.line,
                    f"iterator over unordered container '{call.receiver}': "
                    f"element order is unspecified"))


def _rng(fm: FileModel, out: list[Finding]) -> None:
    toks = [t for t in fm.lexed.tokens if t.kind != "pp"]
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        prev_std = (i >= 2 and toks[i - 1].text == "::"
                    and toks[i - 2].text == "std")
        if t.text in ("rand", "srand") and prev_std:
            out.append(Finding(
                "determinism-rng", fm.path, t.line,
                f"std::{t.text} is not reproducible across platforms — use "
                f"a std::mt19937 seeded from the run config"))
        elif t.text == "random_device":
            out.append(Finding(
                "determinism-rng", fm.path, t.line,
                "std::random_device produces a different stream every run — "
                "seed deterministically from the run config"))
        elif t.text in _SEEDY_ENGINES:
            # Engine construction whose seed expression draws on wall-clock
            # time: mt19937 rng(<...time/now/clock...>).
            j = i + 1
            if j < len(toks) and toks[j].kind == "id":
                j += 1
            if j < len(toks) and toks[j].text in ("(", "{"):
                depth = 0
                for k in range(j, len(toks)):
                    text = toks[k].text
                    if text in ("(", "{"):
                        depth += 1
                    elif text in (")", "}"):
                        depth -= 1
                        if depth == 0:
                            break
                    elif toks[k].kind == "id" and text in _SEED_SOURCES:
                        out.append(Finding(
                            "determinism-rng", fm.path, t.line,
                            f"std::{t.text} seeded from '{text}' — seed "
                            f"deterministically from the run config"))
                        break


def _fp_reduction(fm: FileModel, out: list[Finding]) -> None:
    for lam in fm.parallel_lambdas:
        for var, line in lam.compound_assigns:
            if var in lam.locals_ or var in lam.params:
                continue
            out.append(Finding(
                "determinism-fp-reduction", fm.path, line,
                f"accumulation into captured '{var}' inside a parallel_for "
                f"body: result depends on chunk interleaving (and races) — "
                f"use parallel_reduce or per-chunk partial sums"))


def _thread_local_reads(fm: FileModel, out: list[Finding]) -> None:
    for lam in fm.parallel_lambdas:
        for var in sorted(lam.used_ids & fm.thread_locals):
            if var in lam.locals_ or var in lam.params:
                continue
            out.append(Finding(
                "determinism-thread-local", fm.path, lam.line,
                f"parallel_for body reads thread_local '{var}': each worker "
                f"observes different state — hoist a pointer outside the "
                f"parallel region (see the pack-buffer idiom in gemm.cpp)"))
