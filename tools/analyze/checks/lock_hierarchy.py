"""Lock-level declaration and lock-hierarchy ordering checks.

Every AnnotatedMutex in src/ must declare a level via CANDLE_LOCK_LEVEL(n)
(`lock-level`), and every execution path must acquire locks in strictly
descending level order (`lock-hierarchy`) — the static mirror of the
runtime validator in common/lock_order.{h,cpp}.

Ordering is checked two ways:
  * directly: nested acquisitions inside one function body;
  * transitively: a call made while holding a lock, where the (uniquely
    named) callee's summary — its own acquisitions plus those of its
    callees, to a fixpoint — contains a level >= the innermost held level.

Mutex names resolve through: function locals -> the owning class's members
-> file-scope globals -> a project-unique global. Calls propagate only
through bare names that are unique across the project and not on the
ambiguous-STL-name stoplist; everything else is skipped rather than
guessed, keeping the check false-positive-free on real code (the runtime
validator covers what static resolution skips).
"""

from __future__ import annotations

import re

from model import Acquire, Call, Finding, Function, MutexDecl, Project

_ID_RE = re.compile(r"[A-Za-z_]\w*")

#: Callee names never followed across functions: common STL/idiom method
#: names whose project-level uniqueness would be coincidental.
_STOPLIST = {
    "size", "empty", "begin", "end", "data", "clear", "at", "count",
    "reserve", "resize", "assign", "push_back", "emplace_back", "pop_back",
    "front", "back", "insert", "erase", "find", "str", "c_str", "get",
    "reset", "load", "store", "fetch_add", "exchange", "notify_one",
    "notify_all", "join", "joinable", "swap", "lock", "unlock", "try_lock",
    "wait", "wait_for", "wait_until",
}


def _last_id(expr: str) -> str:
    ids = _ID_RE.findall(expr)
    return ids[-1] if ids else ""


class _Registry:
    def __init__(self, project: Project) -> None:
        self.class_map: dict[str, dict[str, MutexDecl]] = {}
        self.file_map: dict[str, dict[str, MutexDecl]] = {}
        self.global_names: dict[str, list[MutexDecl]] = {}
        for fm in project.files:
            for decl in fm.mutexes:
                self._resolve_level(decl, project)
                if decl.cls:
                    self.class_map.setdefault(decl.cls, {})[decl.var] = decl
                else:
                    self.file_map.setdefault(fm.path, {})[decl.var] = decl
                self.global_names.setdefault(decl.var, []).append(decl)
            for fn in fm.functions:
                for decl in fn.local_mutexes:
                    self._resolve_level(decl, project)

    @staticmethod
    def _resolve_level(decl: MutexDecl, project: Project) -> None:
        text = decl.level_text
        if not text:
            return
        try:
            decl.level = int(text, 0)
            return
        except ValueError:
            pass
        decl.level = project.level_constants.get(_last_id(text))

    def resolve(self, fn: Function, expr: str) -> MutexDecl | None:
        name = _last_id(expr)
        if not name:
            return None
        for decl in fn.local_mutexes:
            if decl.var == name:
                return decl
        by_class = self.class_map.get(fn.cls)
        if by_class and name in by_class:
            return by_class[name]
        by_file = self.file_map.get(fn.path)
        if by_file and name in by_file:
            return by_file[name]
        decls = self.global_names.get(name)
        if decls and len(decls) == 1:
            return decls[0]
        return None


def check_lock_hierarchy(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    reg = _Registry(project)

    # --- lock-level: declaration hygiene in src/ ---
    for fm in project.files:
        if not fm.path.startswith("src/"):
            continue
        decls = list(fm.mutexes)
        for fn in fm.functions:
            decls.extend(fn.local_mutexes)
        for decl in decls:
            where = f"'{decl.cls}::{decl.var}'" if decl.cls \
                else f"'{decl.var}'"
            if not decl.annotated:
                findings.append(Finding(
                    "lock-level", fm.path, decl.line,
                    f"raw std::mutex {where} — use AnnotatedMutex with "
                    f"CANDLE_LOCK_LEVEL (common/thread_annotations.h)"))
            elif not decl.level_text:
                findings.append(Finding(
                    "lock-level", fm.path, decl.line,
                    f"AnnotatedMutex {where} does not declare a lock level "
                    f"via CANDLE_LOCK_LEVEL(n)"))
            elif decl.level is None:
                findings.append(Finding(
                    "lock-level", fm.path, decl.line,
                    f"AnnotatedMutex {where}: cannot resolve lock level "
                    f"'{decl.level_text}' (not an integer literal or a "
                    f"known lock_order::level constant)"))

    # --- function summaries: levels each function may acquire ---
    all_functions: list[Function] = []
    by_name: dict[str, list[Function]] = {}
    for fm in project.files:
        for fn in fm.functions:
            all_functions.append(fn)
            by_name.setdefault(fn.name, []).append(fn)

    summaries: dict[int, set[tuple[int, str]]] = {}
    for fn in all_functions:
        summary = set()
        for acq in fn.acquires:
            decl = reg.resolve(fn, acq.mutex)
            if decl is not None and decl.level is not None:
                acq.level = decl.level
                summary.add((decl.level, decl.name_str or decl.var))
        summaries[id(fn)] = summary

    def resolve_callee(call: Call) -> Function | None:
        if call.name in _STOPLIST:
            return None
        cands = by_name.get(call.name)
        if cands and len(cands) == 1:
            return cands[0]
        return None

    changed = True
    while changed:
        changed = False
        for fn in all_functions:
            summary = summaries[id(fn)]
            for call in fn.calls:
                callee = resolve_callee(call)
                if callee is None or callee is fn:
                    continue
                extra = summaries[id(callee)] - summary
                if extra:
                    summary.update(extra)
                    changed = True

    # --- lock-hierarchy: direct nesting ---
    for fn in all_functions:
        for outer, inner in fn.nested_pairs:
            douter = reg.resolve(fn, outer.mutex)
            dinner = reg.resolve(fn, inner.mutex)
            if douter is None or dinner is None:
                continue
            if douter.level is None or dinner.level is None:
                continue
            if dinner.level >= douter.level:
                findings.append(Finding(
                    "lock-hierarchy", fn.path, inner.line,
                    f"acquiring '{dinner.name_str or dinner.var}' (level "
                    f"{dinner.level}) while holding "
                    f"'{douter.name_str or douter.var}' (level "
                    f"{douter.level}) in {fn.qualname}: lock levels must "
                    f"be strictly descending"))

    # --- lock-hierarchy: transitive, via calls made under a lock ---
    for fn in all_functions:
        for call in fn.calls:
            if not call.held:
                continue
            callee = resolve_callee(call)
            if callee is None or callee is fn:
                continue
            held_levels = []
            for expr in call.held:
                decl = reg.resolve(fn, expr)
                if decl is not None and decl.level is not None:
                    held_levels.append((decl.level,
                                        decl.name_str or decl.var))
            if not held_levels:
                continue
            bound, bound_name = min(held_levels)
            for lvl, name in sorted(summaries[id(callee)]):
                if lvl >= bound:
                    findings.append(Finding(
                        "lock-hierarchy", fn.path, call.line,
                        f"{fn.qualname} calls {callee.name}() while "
                        f"holding '{bound_name}' (level {bound}), and the "
                        f"callee may acquire '{name}' (level {lvl}): lock "
                        f"levels must be strictly descending"))
                    break  # one finding per call site
    return findings
