"""Thread-creation sanctioning and condition-variable wait hygiene.

`thread-site`: the AST-accurate replacement for lint.py's old regex rule.
All parallelism must flow through the sanctioned runtimes — the shared
candle::parallel pool, the comm rank threads, the hvd background thread,
and the batch-pipeline stage threads. Ad-hoc std::thread elsewhere
fragments the CANDLE_NUM_THREADS budget and breaks the pinned-thread
model the paper's scaling study depends on. std::async (unspecified
policy, blocking-destructor futures) and detached threads (unjoinable at
shutdown, outlive sanitizer scope) are never sanctioned.

`condvar-wait`: waits must pass a predicate; a bare wait() returns on
spurious wakeups and re-derives the predicate race-prone at every caller.
"""

from __future__ import annotations

from model import Finding, Project

#: Path prefixes where spawning threads is sanctioned.
_SANCTIONED = (
    "src/common/parallel.",      # the shared worker pool
    "src/comm/",                 # rank-per-thread communicator harness
    "src/hvd/",                  # background collective thread
    "src/nn/batch_pipeline.",    # pipeline stage threads
    "src/serve/",                # serving dispatcher + loadgen clients
)

#: The annotation wrapper layer forwards waits by design.
_WRAPPER_FILES = ("src/common/thread_annotations.h",)


def check_thread_sites(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for fm in project.files:
        sanctioned = any(fm.path.startswith(p) for p in _SANCTIONED)
        for site in fm.thread_sites:
            if site.kind == "async":
                findings.append(Finding(
                    "thread-site", fm.path, site.line,
                    "std::async has an unspecified launch policy and "
                    "blocking futures — submit to candle::parallel or use "
                    "an owned std::thread in a sanctioned runtime"))
            elif site.kind == "detach":
                findings.append(Finding(
                    "thread-site", fm.path, site.line,
                    "detached threads cannot be joined at shutdown and "
                    "outlive sanitizer scope — keep the std::thread owned "
                    "and join it"))
            elif not sanctioned:
                what = ("growing a std::thread container"
                        if site.kind == "emplace"
                        else f"std::{site.kind}")
                findings.append(Finding(
                    "thread-site", fm.path, site.line,
                    f"{what} outside the sanctioned runtimes "
                    f"(candle::parallel, comm, hvd, batch_pipeline) — "
                    f"use candle::parallel::parallel_for or add the "
                    f"runtime to the sanctioned list deliberately"))

        if fm.path in _WRAPPER_FILES:
            continue
        for w in fm.waits:
            if w.receiver not in fm.condvars:
                continue  # e.g. future.wait()
            needed = 2 if w.method == "wait" else 3
            if w.nargs < needed:
                findings.append(Finding(
                    "condvar-wait", fm.path, w.line,
                    f"{w.receiver}.{w.method}() without a predicate: "
                    f"spurious wakeups make the caller re-derive the "
                    f"condition — pass the predicate lambda"))
    return findings
