"""Optional libclang frontend for candle-analyze.

When the `clang.cindex` Python bindings and a loadable libclang are
available, this frontend parses each file as a real translation unit and
overlays type-accurate declaration sets (mutexes, condvars, Tensors,
unordered containers, MappedFrames) on top of the lexical model. Function
bodies are still lowered through the shared lexical walk, so both
frontends emit the same IR shape and the checks stay frontend-agnostic.

The import of this module raises when libclang is unusable in the
environment (no bindings, no shared library); engine.build_models catches
that and falls back to the lexical frontend. The container this repo is
developed in has no libclang — CI's gating analyze job pins
`--frontend lexical` for reproducibility and runs this frontend only in a
non-gating step where the bindings are installed.
"""

from __future__ import annotations

from clang import cindex  # raises ImportError when bindings are absent

from lexical_frontend import build_file_model
from model import FileModel, MutexDecl

# Fail at import time (not per-file) when no libclang.so can be loaded, so
# the engine falls back exactly once.
_INDEX = cindex.Index.create()

_ARGS = ["-std=c++20", "-xc++", "-Isrc"]


def build_file_model_clang(path: str, text: str) -> FileModel:
    model = build_file_model(path, text)
    try:
        tu = _INDEX.parse(path, args=_ARGS,
                          unsaved_files=[(path, text)],
                          options=cindex.TranslationUnit
                          .PARSE_SKIP_FUNCTION_BODIES)
    except cindex.TranslationUnitLoadError:
        return model  # lexical model is still valid
    _overlay_decls(tu.cursor, path, model)
    return model


def _overlay_decls(cursor, path: str, model: FileModel) -> None:
    for c in cursor.walk_preorder():
        if c.location.file is None or str(c.location.file) != path:
            continue
        if c.kind not in (cindex.CursorKind.FIELD_DECL,
                          cindex.CursorKind.VAR_DECL,
                          cindex.CursorKind.PARM_DECL):
            continue
        ty = c.type.spelling
        name = c.spelling
        if not name:
            continue
        if "AnnotatedMutex" in ty:
            if not any(d.var == name for d in model.mutexes):
                cls = ""
                parent = c.semantic_parent
                if parent is not None and parent.kind in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL):
                    cls = parent.spelling
                model.mutexes.append(MutexDecl(
                    var=name, cls=cls, line=c.location.line, annotated=True))
        elif ty in ("std::mutex", "mutex"):
            if not any(d.var == name for d in model.mutexes):
                model.mutexes.append(MutexDecl(
                    var=name, cls="", line=c.location.line, annotated=False))
        elif "condition_variable" in ty or "AnnotatedCondVar" in ty:
            model.condvars.add(name)
        elif "Tensor" in ty and "vector" not in ty:
            model.tensors.add(name)
        elif "unordered_map" in ty or "unordered_set" in ty:
            model.unordered.add(name)
        elif "MappedFrame" in ty:
            model.mapped_frames.add(name)
        elif "vector<std::thread>" in ty.replace(" ", ""):
            model.thread_vectors.add(name)
