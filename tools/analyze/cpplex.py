"""C++ tokenizer for candle-analyze.

Lexes a translation unit into a flat token stream with line numbers,
stripping comments (collected separately for suppression parsing) and
folding preprocessor logical lines into single `pp` tokens so directive
bodies never confuse brace tracking. This is not a full C++ lexer — it is
exactly accurate for the constructs the project checks need: identifiers,
qualified names, string/char literals (including raw strings), punctuation,
and `// candle-analyze: allow(...)` suppression comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Multi-character punctuators that matter for the checks; longest first.
_PUNCTS = (
    "->*", "<<=", ">>=", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",
)

_ID_START = re.compile(r"[A-Za-z_]")
_ID_CONT = re.compile(r"[A-Za-z0-9_]")
_SUPPRESS_RE = re.compile(
    r"candle-analyze:\s*allow\(\s*([A-Za-z0-9_,\s-]+?)\s*\)")


@dataclass(frozen=True)
class Token:
    kind: str  # 'id' | 'num' | 'str' | 'char' | 'punct' | 'pp'
    text: str
    line: int


class LexedFile:
    """Token stream plus the per-line suppression sets."""

    def __init__(self, tokens: list[Token],
                 suppressions: dict[int, set[str]]) -> None:
        self.tokens = tokens
        self.suppressions = suppressions

    def suppressed(self, line: int, check: str) -> bool:
        """True when `check` is allowed on `line` (same line or the
        immediately preceding line carries the suppression comment)."""
        for ln in (line, line - 1):
            allowed = self.suppressions.get(ln)
            if allowed and (check in allowed or "all" in allowed):
                return True
        return False


def _record_suppression(comment: str, line: int,
                        out: dict[int, set[str]]) -> None:
    m = _SUPPRESS_RE.search(comment)
    if m:
        checks = {c.strip() for c in m.group(1).split(",") if c.strip()}
        out.setdefault(line, set()).update(checks)


def lex(text: str) -> LexedFile:
    tokens: list[Token] = []
    suppressions: dict[int, set[str]] = {}
    i, n = 0, len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            at_line_start = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Preprocessor logical line (with \-continuations).
        if c == "#" and at_line_start:
            start = i
            start_line = line
            while i < n:
                if text[i] == "\n":
                    if i > 0 and text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            tokens.append(Token("pp", text[start:i], start_line))
            continue

        at_line_start = False

        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            _record_suppression(text[i:j], line, suppressions)
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            _record_suppression(text[i:j], line, suppressions)
            line += text.count("\n", i, j + 2)
            i = j + 2
            continue

        # Raw string literal R"delim(...)delim".
        if c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                delim = m.group(1)
                close = ")" + delim + '"'
                j = text.find(close, i + m.end())
                j = n - len(close) if j < 0 else j
                lit = text[i:j + len(close)]
                tokens.append(Token("str", lit, line))
                line += lit.count("\n")
                i = j + len(close)
                continue

        # String / char literals.
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("str" if quote == '"' else "char",
                                text[i:j + 1], line))
            i = j + 1
            continue

        # Identifiers / keywords.
        if _ID_START.match(c):
            j = i + 1
            while j < n and _ID_CONT.match(text[j]):
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue

        # Numbers (good enough: digits, dots, exponents, suffixes, hex).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue

        # Punctuation.
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1

    return LexedFile(tokens, suppressions)


def match_paren(tokens: list[Token], open_idx: int) -> int:
    """Index of the token closing the bracket at open_idx ('(' '[' '{').
    Returns len(tokens) - 1 when unbalanced."""
    pairs = {"(": ")", "[": "]", "{": "}"}
    close = pairs[tokens[open_idx].text]
    opener = tokens[open_idx].text
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j].text
        if tokens[j].kind != "punct":
            continue
        if t == opener:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens) - 1


def split_args(tokens: list[Token], open_idx: int,
               close_idx: int) -> list[tuple[int, int]]:
    """Top-level comma-separated argument ranges inside a call's parens:
    list of (start, end) token index ranges (end exclusive). Empty list for
    an empty argument list. Depth tracks () [] {} only — a comma inside
    template arguments of an argument expression may over-split, which is
    acceptable for the arity checks this feeds."""
    args: list[tuple[int, int]] = []
    start = open_idx + 1
    if start >= close_idx:
        return args
    depth = 0
    for j in range(open_idx + 1, close_idx):
        if tokens[j].kind != "punct":
            continue
        t = tokens[j].text
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        elif t == "," and depth == 0:
            args.append((start, j))
            start = j + 1
    args.append((start, close_idx))
    return args
