"""candle-analyze engine: file collection, frontend dispatch, check
running, and suppression filtering."""

from __future__ import annotations

import json
import sys
from pathlib import Path

from model import FileModel, Finding, Project

#: Directories analyzed, relative to the repo root. tests/ and tools/ are
#: deliberately out of scope: tests exercise forbidden constructs on
#: purpose (EXPECT_DEATH, raw threads for stress harnesses).
ANALYZED_DIRS = ("src", "bench", "examples")

_SOURCE_SUFFIXES = (".cpp", ".cc", ".cxx", ".h", ".hpp")


def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]


def collect_files(repo: Path, build: Path | None) -> list[Path]:
    """Files to analyze: every source/header under the analyzed dirs. A
    compile_commands.json (from --build) contributes any additional TUs it
    references under those dirs — the same set in this repo, but it keeps
    generated sources covered if one ever appears."""
    files: set[Path] = set()
    for d in ANALYZED_DIRS:
        base = repo / d
        if not base.is_dir():
            continue
        for p in base.rglob("*"):
            if p.suffix in _SOURCE_SUFFIXES and p.is_file():
                files.add(p.resolve())
    if build is not None:
        cc = build / "compile_commands.json"
        if cc.is_file():
            for entry in json.loads(cc.read_text()):
                p = Path(entry["file"])
                if not p.is_absolute():
                    p = Path(entry["directory"]) / p
                p = p.resolve()
                try:
                    rel = p.relative_to(repo.resolve())
                except ValueError:
                    continue
                if rel.parts and rel.parts[0] in ANALYZED_DIRS \
                        and p.suffix in _SOURCE_SUFFIXES and p.is_file():
                    files.add(p)
        else:
            print(f"candle-analyze: note: no compile_commands.json in "
                  f"{build} (configure with CMAKE_EXPORT_COMPILE_COMMANDS); "
                  f"falling back to directory globs", file=sys.stderr)
    return sorted(files)


_FRONTEND_CACHE: dict[str, object] = {}


def _resolve_frontend(frontend: str):
    if frontend in _FRONTEND_CACHE:
        return _FRONTEND_CACHE[frontend]
    build_fn = None
    if frontend in ("auto", "libclang"):
        try:
            from clang_frontend import build_file_model_clang
            build_fn = build_file_model_clang
        except Exception as exc:  # ImportError, missing libclang.so, ...
            if frontend == "libclang":
                raise SystemExit(
                    f"candle-analyze: libclang frontend unavailable: {exc}")
            print(f"candle-analyze: note: libclang unavailable "
                  f"({type(exc).__name__}); using the lexical frontend",
                  file=sys.stderr)
    if build_fn is None:
        from lexical_frontend import build_file_model
        build_fn = build_file_model
    _FRONTEND_CACHE[frontend] = build_fn
    return build_fn


def build_models(paths: list[tuple[str, str]],
                 frontend: str = "auto") -> Project:
    """paths: (repo-relative display path, file text) pairs. frontend:
    'auto' | 'lexical' | 'libclang'."""
    build_fn = _resolve_frontend(frontend)

    project = Project(files=[])
    for rel, text in paths:
        project.files.append(build_fn(rel, text))
    project.finish()
    return project


def run_checks(project: Project) -> list[Finding]:
    from checks import ALL_CHECKS
    findings: list[Finding] = []
    for check in ALL_CHECKS:
        findings.extend(check(project))
    findings = _filter_suppressed(project, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


def _filter_suppressed(project: Project,
                       findings: list[Finding]) -> list[Finding]:
    by_path: dict[str, FileModel] = {fm.path: fm for fm in project.files}
    kept = []
    for f in findings:
        fm = by_path.get(f.path)
        if fm is not None and fm.lexed.suppressed(f.line, f.check):
            continue
        kept.append(f)
    return kept


def analyze_paths(file_paths: list[Path], repo: Path,
                  frontend: str = "auto") -> list[Finding]:
    pairs = []
    repo = repo.resolve()
    for p in file_paths:
        try:
            rel = str(p.resolve().relative_to(repo))
        except ValueError:
            rel = str(p)
        pairs.append((rel, p.read_text(encoding="utf-8", errors="replace")))
    return run_checks(build_models(pairs, frontend))


def analyze_fixture(path: Path, frontend: str = "auto") -> list[Finding]:
    """Analyzes a single fixture file under its declared virtual path (the
    `// candle-analyze-fixture: virtual-path=...` header), so path-scoped
    checks see it as repo code."""
    text = path.read_text(encoding="utf-8")
    virtual = str(path)
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("// candle-analyze-fixture:"):
            body = line.split(":", 1)[1].strip()
            if body.startswith("virtual-path="):
                virtual = body.split("=", 1)[1].strip()
    return run_checks(build_models([(virtual, text)], frontend))
