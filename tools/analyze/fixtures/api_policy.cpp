// candle-analyze-fixture: virtual-path=src/candle/fixture_api.cpp
// candle-analyze-fixture: expect=tensor-subscript:13
// candle-analyze-fixture: expect=span-lifetime:18
// candle-analyze-fixture: expect=span-lifetime:22
#include <span>

namespace candle {

class Tensor;
class MappedFrame;

float peek(const Tensor& t) {
  return t[0];  // unchecked indexing outside the hot paths: use at()
}

std::span<const float> first_row() {
  MappedFrame frame("cache.bin");
  return frame.row(0);  // span outlives the local frame
}

void peek_row() {
  auto row = MappedFrame("cache.bin").row(0);  // span into a temporary
  (void)row;
}

}  // namespace candle
