// candle-analyze-fixture: virtual-path=src/comm/fixture_clean.cpp
// Conforming patterns only: this fixture must produce ZERO findings.
// Exercises descending lock order, a sanctioned std::thread (comm is a
// sanctioned runtime), a predicated condvar wait, a future wait (which is
// not a condvar wait), and an allow() suppression of a real inversion.
#include "common/thread_annotations.h"
#include <thread>

namespace candle::comm {

AnnotatedMutex g_high{CANDLE_LOCK_LEVEL(50), "comm::fixture_high"};
AnnotatedMutex g_low{CANDLE_LOCK_LEVEL(10), "comm::fixture_low"};
AnnotatedCondVar g_cv;

void helper();

void descending_ok() {
  MutexLock outer(g_high);
  MutexLock inner(g_low);
}

void sanctioned_thread() {
  std::thread worker(helper);
  worker.join();
}

void wait_with_predicate() {
  MutexLock lock(g_low);
  g_cv.wait(g_low, [] { return true; });
}

void suppressed_inversion() {
  MutexLock outer(g_low);
  // candle-analyze: allow(lock-hierarchy)
  MutexLock inner(g_high);
}

}  // namespace candle::comm
