// candle-analyze-fixture: virtual-path=src/nn/fixture_condvar.cpp
// candle-analyze-fixture: expect=condvar-wait:16
// A bare wait() returns on spurious wakeups; the raw std::mutex is
// deliberately suppressed to exercise the allow() mechanism.
#include <condition_variable>
#include <mutex>

namespace candle::nn {

std::condition_variable g_cv;
// candle-analyze: allow(lock-level)
std::mutex g_mu;

void wait_no_predicate() {
  std::unique_lock<std::mutex> lock(g_mu);
  g_cv.wait(lock);
}

}  // namespace candle::nn
