// candle-analyze-fixture: virtual-path=src/comm/fixture_codec.cpp
// candle-analyze-fixture: expect=determinism-fp-reduction:28
// Wire-codec hot-loop shapes under the src/comm determinism scope. The
// elementwise loops are the real patterns from wire_codec.cpp: plain
// assignment (encode/decode) and subscripted fused accumulation
// (decode_add) touch only their own dst element per index, so chunk
// interleaving cannot change any result and they must stay clean. The
// scalar captured accumulator at the end is the one genuine hazard.
#include <cstddef>
#include <cstdint>

namespace candle::comm {

float half_to_float(std::uint16_t bits);

void decode_buffer(const std::uint16_t* src, float* dst, std::size_t n) {
  parallel_for(n, [&](std::size_t i) { dst[i] = half_to_float(src[i]); });
}

void decode_add_buffer(const std::uint16_t* src, float* dst, std::size_t n) {
  // Fused reduce-scatter accumulation: elementwise, order-free, clean.
  parallel_for(n, [&](std::size_t i) { dst[i] += half_to_float(src[i]); });
}

float quantization_error(const std::uint16_t* src, const float* ref,
                         std::size_t n) {
  float total = 0.0f;
  parallel_for(n, [&](std::size_t i) { total += ref[i] - half_to_float(src[i]); });
  return total;
}

}  // namespace candle::comm
