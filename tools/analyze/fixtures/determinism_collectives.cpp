// candle-analyze-fixture: virtual-path=src/comm/fixture_collectives.cpp
// candle-analyze-fixture: expect=determinism-fp-reduction:30
// candle-analyze-fixture: expect=determinism-unordered:38
// Reduce-scatter / allgather hot-loop shapes under the src/comm determinism
// scope. The per-hop segment loops are the real patterns from the standalone
// collectives: the reduce-scatter hop accumulates a peer's segment into the
// owned segment elementwise (each index touches only its own dst element, so
// chunk interleaving cannot reorder any FP sum), and the allgather hop is a
// plain segment copy. Both must stay clean. The captured-scalar wire-error
// accumulator and the hash-ordered pending-segment walk are the genuine
// hazards a refactor could introduce.
#include <cstddef>
#include <unordered_map>

namespace candle::comm {

void reduce_scatter_hop(const float* src, float* dst, std::size_t seg) {
  // Fused decode_add of one ring hop: elementwise, order-free, clean.
  parallel_for(seg, [&](std::size_t i) { dst[i] += src[i]; });
}

void allgather_hop(const float* src, float* dst, std::size_t seg) {
  parallel_for(seg, [&](std::size_t i) { dst[i] = src[i]; });
}

float wire_error(const float* sent, const float* ref, std::size_t seg) {
  // Hazard: FP accumulation into captured state — the chunk interleaving
  // of parallel_for decides the summation order.
  float total = 0.0f;
  parallel_for(seg, [&](std::size_t i) { total += ref[i] - sent[i]; });
  return total;
}

std::unordered_map<std::size_t, const float*> g_pending_segments;

float drain_pending(std::size_t seg) {
  float total = 0.0f;
  for (const auto& kv : g_pending_segments) {
    for (std::size_t i = 0; i < seg; ++i) total += kv.second[i];
  }
  return total;
}

}  // namespace candle::comm
