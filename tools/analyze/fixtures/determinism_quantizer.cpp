// candle-analyze-fixture: virtual-path=src/comm/fixture_quantizer.cpp
// candle-analyze-fixture: expect=determinism-fp-reduction:31
// Int8 quantizer hot-loop shapes under the src/comm determinism scope.
// The chunked loops are the real patterns from wire_codec.cpp: each
// parallel iteration owns one 256-element quantization chunk end to end
// (its scale slot and its payload slice), so pool width and chunk
// interleaving cannot change any byte and they must stay clean. The
// captured scalar accumulating a global absmax across chunks is the one
// genuine hazard: fp max is order-safe but the captured += tail is not.
#include <cstddef>
#include <cstdint>

namespace candle::comm {

float chunk_absmax(const float* data, std::size_t elems);
void quantize_chunk(const float* data, std::uint8_t* payload, float scale,
                    std::size_t elems);

void encode_chunked(const float* data, std::uint8_t* payload, float* scales,
                    std::size_t chunks, std::size_t chunk_elems) {
  // One iteration per chunk: disjoint scale slot + disjoint payload slice.
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t base = c * chunk_elems;
    scales[c] = chunk_absmax(data + base, chunk_elems);
    quantize_chunk(data + base, payload + base, scales[c], chunk_elems);
  });
}

float total_quantization_energy(const float* residual, std::size_t n) {
  float energy = 0.0f;
  parallel_for(n, [&](std::size_t i) { energy += residual[i] * residual[i]; });
  return energy;
}

}  // namespace candle::comm
