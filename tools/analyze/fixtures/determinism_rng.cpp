// candle-analyze-fixture: virtual-path=src/tensor/fixture_determinism.cpp
// candle-analyze-fixture: expect=determinism-rng:12
// candle-analyze-fixture: expect=determinism-rng:13
// candle-analyze-fixture: expect=determinism-fp-reduction:20
// candle-analyze-fixture: expect=determinism-thread-local:27
#include <chrono>
#include <random>

namespace candle {

float noise() {
  std::random_device rd;
  std::mt19937 rng(std::chrono::steady_clock::now().time_since_epoch().count());
  (void)rd;
  return static_cast<float>(rng());
}

float sum_all(const float* x, std::size_t n) {
  float total = 0.0f;
  parallel_for(n, [&](std::size_t i) { total += x[i]; });
  return total;
}

thread_local float* t_scratch = nullptr;

void scale(float* x, std::size_t n) {
  parallel_for(n, [&](std::size_t i) { x[i] *= t_scratch[i]; });
}

}  // namespace candle
