// candle-analyze-fixture: virtual-path=src/fixture/lock_inversion.cpp
// candle-analyze-fixture: expect=lock-hierarchy:19
// candle-analyze-fixture: expect=lock-hierarchy:26
// Direct and transitive lock-order inversions against CANDLE_LOCK_LEVEL.
#include "common/thread_annotations.h"

namespace candle::fixture {

AnnotatedMutex g_low{CANDLE_LOCK_LEVEL(10), "fixture::g_low"};
AnnotatedMutex g_high{CANDLE_LOCK_LEVEL(50), "fixture::g_high"};

void ordered_ok() {
  MutexLock outer(g_high);
  MutexLock inner(g_low);  // 50 -> 10: strictly descending, conforming
}

void inverted() {
  MutexLock outer(g_low);
  MutexLock inner(g_high);  // 10 -> 50: inversion, flagged
}

void locks_high() { MutexLock lock(g_high); }

void calls_under_low() {
  MutexLock lock(g_low);
  locks_high();  // callee acquires level 50 while we hold 10: flagged
}

}  // namespace candle::fixture
