// candle-analyze-fixture: virtual-path=src/trace/fixture_lock_level.cpp
// candle-analyze-fixture: expect=lock-level:9
// candle-analyze-fixture: expect=lock-level:10
// Every mutex in src/ must be an AnnotatedMutex with CANDLE_LOCK_LEVEL(n).
#include "common/thread_annotations.h"

namespace candle::trace {

AnnotatedMutex g_unleveled{7, "trace::fixture"};
std::mutex g_raw;

}  // namespace candle::trace
