// candle-analyze-fixture: virtual-path=src/serve/fixture_admission.cpp
// candle-analyze-fixture: expect=determinism-unordered:40
// The serving admission-queue idioms. The slot hand-off — declared lock
// level, predicated wait, deadline wait_until with predicate, sanctioned
// dispatcher thread — must produce zero findings; the per-model stats
// aggregation over an unordered_map must be flagged (serve/ is in the
// determinism scope: a served report's row order must not depend on the
// hash seed).
#include "common/thread_annotations.h"
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>

namespace candle::serve {

AnnotatedMutex g_admission{CANDLE_LOCK_LEVEL(80),
                           "serve::fixture_admission"};
AnnotatedCondVar g_dispatch;
bool g_ready = false;

void serve_batches();

void slot_handoff_ok() {
  MutexLock lock(g_admission);
  g_dispatch.wait(g_admission, [] { return g_ready; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
  (void)g_dispatch.wait_until(g_admission, deadline, [] { return g_ready; });
}

void dispatcher_thread_ok() {
  std::thread dispatcher(serve_batches);
  dispatcher.join();
}

double unordered_report_hazard(
    const std::unordered_map<std::string, double>& per_model) {
  double total = 0.0;
  for (const auto& kv : per_model) {
    total += kv.second;
  }
  return total;
}

}  // namespace candle::serve
