// candle-analyze-fixture: virtual-path=src/hvd/fixture_unordered.cpp
// candle-analyze-fixture: expect=determinism-unordered:14
// Iterating an unordered container in the hvd layer: the reduction order
// (and so the FP result) would depend on the hash seed and load factor.
#include <string>
#include <unordered_map>

namespace candle::hvd {

std::unordered_map<std::string, double> g_pending;

double drain_sum() {
  double sum = 0.0;
  for (const auto& kv : g_pending) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace candle::hvd
