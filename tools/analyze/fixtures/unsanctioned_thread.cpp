// candle-analyze-fixture: virtual-path=src/nn/fixture_thread.cpp
// candle-analyze-fixture: expect=thread-site:15
// candle-analyze-fixture: expect=thread-site:16
// candle-analyze-fixture: expect=thread-site:17
// Ad-hoc threading outside the sanctioned runtimes (candle::parallel,
// comm, hvd, batch_pipeline). f.wait() must NOT be flagged as condvar-wait.
#include <future>
#include <thread>

namespace candle::nn {

void helper();

void spawn_adhoc() {
  std::thread worker(helper);
  auto f = std::async(helper);
  worker.detach();
  f.wait();
}

}  // namespace candle::nn
