"""Token-level frontend for candle-analyze.

Lowers a lexed C++ file into the shared IR (model.FileModel) using a
structural scan: namespace/class context tracking, function-boundary
detection, and a per-body event walk (lock acquisitions with RAII scoping,
calls with the held-lock context, condvar waits, thread sites, parallel_for
lambda bodies, subscripts, range-fors, MappedFrame escapes).

This frontend is self-contained (no libclang needed) and is the default
engine; clang_frontend refines declaration typing with libclang when the
`clang.cindex` bindings are available, but lowers bodies through the same
walk so both frontends produce identical IR shapes.

Known approximations (accepted for a project-specific gate): declarations
are resolved by name per file/class rather than full scope analysis, and
function detection is heuristic (an identifier followed by a balanced
parameter list and a `{` body). Both are exact for this codebase's idiom;
false positives are suppressible with `// candle-analyze: allow(<check>)`.
"""

from __future__ import annotations

import re

from cpplex import LexedFile, Token, lex, match_paren, split_args
from model import (Acquire, Call, FileModel, Function, MutexDecl,
                   ParallelLambda, RangeFor, SpanEscape, Subscript,
                   ThreadSite, Wait)

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "throw", "new", "delete", "static_cast", "const_cast", "dynamic_cast",
    "reinterpret_cast", "decltype", "noexcept", "case", "do", "else",
    "co_await", "co_return", "co_yield", "static_assert", "requires",
    "alignas", "assert",
}

_RAII_LOCKS = {"MutexLock", "lock_guard", "scoped_lock", "unique_lock"}

_LOCAL_TYPE_HINTS = {
    "auto", "float", "double", "int", "long", "unsigned", "size_t",
    "ptrdiff_t", "int64_t", "uint64_t", "int32_t", "uint32_t", "bool",
    "char",
}

_LEVEL_CONST_RE = re.compile(r"^k[A-Za-z0-9_]+$")


def build_file_model(path: str, text: str) -> FileModel:
    lexed = lex(text)
    model = FileModel(path=path, lexed=lexed)
    builder = _Builder(model)
    builder.scan_scope(0, len(builder.toks), [])
    return model


class _Builder:
    def __init__(self, model: FileModel) -> None:
        self.model = model
        # Structure scan ignores preprocessor tokens entirely.
        self.toks: list[Token] = [t for t in model.lexed.tokens
                                  if t.kind != "pp"]

    # ---------------- structure ----------------

    def scan_scope(self, i: int, end: int, ctx: list[str]) -> None:
        """Scans a declaration scope (file / namespace / class body)."""
        toks = self.toks
        while i < end:
            t = toks[i]
            text = t.text
            if text == "template":
                i = self._skip_template(i + 1)
                continue
            if text == "namespace":
                i = self._enter_namespace(i, end, ctx)
                continue
            if text in ("class", "struct", "union"):
                i = self._enter_class(i, end, ctx)
                continue
            if text == "enum":
                i = self._skip_enum(i, end)
                continue
            if text == "}":
                return
            i = self._scan_statement(i, end, ctx)

    def _skip_template(self, i: int) -> int:
        toks = self.toks
        if i < len(toks) and toks[i].text == "<":
            depth = 0
            while i < len(toks):
                if toks[i].text == "<":
                    depth += 1
                elif toks[i].text == ">":
                    depth -= 1
                    if depth == 0:
                        return i + 1
                elif toks[i].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        return i + 1
                i += 1
        return i

    def _enter_namespace(self, i: int, end: int, ctx: list[str]) -> int:
        toks = self.toks
        j = i + 1
        parts: list[str] = []
        while j < end and (toks[j].kind == "id" or toks[j].text == "::"):
            if toks[j].kind == "id":
                parts.append(toks[j].text)
            j += 1
        if j < end and toks[j].text == "{":
            close = match_paren(toks, j)
            self.scan_scope(j + 1, close, ctx + (parts or ["<anon>"]))
            return close + 1
        # Namespace alias or using-directive; skip to ';'.
        while j < end and toks[j].text != ";":
            j += 1
        return j + 1

    def _enter_class(self, i: int, end: int, ctx: list[str]) -> int:
        toks = self.toks
        j = i + 1
        name = ""
        # Skip attribute-style macros: `class CANDLE_CAPABILITY("x") Name`.
        while j < end:
            if toks[j].kind == "id":
                if j + 1 < end and toks[j + 1].text == "(":
                    j = match_paren(toks, j + 1) + 1
                    continue
                name = toks[j].text
                j += 1
                break
            j += 1
        # Find the body '{' or a ';' (forward declaration) first.
        while j < end and toks[j].text not in ("{", ";"):
            if toks[j].text == "(":  # e.g. a macro in the base clause
                j = match_paren(toks, j)
            j += 1
        if j >= end or toks[j].text == ";":
            return j + 1
        close = match_paren(toks, j)
        self.scan_scope(j + 1, close, ctx + [name])
        return close + 1

    def _skip_enum(self, i: int, end: int) -> int:
        toks = self.toks
        j = i
        while j < end and toks[j].text not in ("{", ";"):
            j += 1
        if j < end and toks[j].text == "{":
            j = match_paren(toks, j)
            while j < end and toks[j].text != ";":
                j += 1
        return j + 1

    def _scan_statement(self, i: int, end: int, ctx: list[str]) -> int:
        """Scans one declaration-scope statement starting at i. Detects
        function definitions; otherwise extracts typed declarations."""
        toks = self.toks
        stmt_start = i
        j = i
        while j < end:
            text = toks[j].text
            if text == ";":
                self._extract_decls(stmt_start, j, ctx, None)
                return j + 1
            if text == "}":
                self._extract_decls(stmt_start, j, ctx, None)
                return j
            if text == "{":
                # Brace-initialized variable (or stray block): skip.
                close = match_paren(toks, j)
                k = close + 1
                if k < end and toks[k].text == ";":
                    self._extract_decls(stmt_start, k, ctx, None)
                    return k + 1
                self._extract_decls(stmt_start, close, ctx, None)
                return close + 1
            if text == "(" and j > stmt_start and toks[j - 1].kind == "id" \
                    and toks[j - 1].text not in _KEYWORDS:
                handled, nxt = self._try_function(stmt_start, j, end, ctx)
                if handled:
                    return nxt
                j = match_paren(toks, j) + 1
                continue
            j += 1
        self._extract_decls(stmt_start, end, ctx, None)
        return end

    def _try_function(self, stmt_start: int, paren: int, end: int,
                      ctx: list[str]) -> tuple[bool, int]:
        """Called with `paren` at the '(' following an identifier. Returns
        (True, next_index) when a function definition body was consumed."""
        toks = self.toks
        close = match_paren(toks, paren)
        # Walk the trailer: specifiers, attribute macros, trailing return.
        j = close + 1
        while j < end:
            text = toks[j].text
            if toks[j].kind == "id" or text in ("&", "&&", "*", "->", "::",
                                                "<", ">", ",", "..."):
                j += 1
                continue
            if text == "(":
                j = match_paren(toks, j) + 1
                continue
            if text == ";":
                return False, 0  # declaration / prototype
            if text == "=":
                return False, 0  # `= default` / `= delete` / initializer
            if text == ":":
                j = self._skip_ctor_inits(j + 1, end)
                if j < end and toks[j].text == "{":
                    break
                return False, 0
            if text == "{":
                break
            return False, 0
        if j >= end or toks[j].text != "{":
            return False, 0
        body_close = match_paren(toks, j)
        name, cls = self._function_name(paren, ctx)
        fn = Function(name=name,
                      qualname="::".join([c for c in ctx if c] + [name]),
                      cls=cls, path=self.model.path, line=toks[paren].line)
        # Parameters may declare Tensor/MappedFrame/condvar references.
        self._extract_decls(paren + 1, close, ctx, fn)
        self._scan_body(fn, j + 1, body_close, ctx)
        self.model.functions.append(fn)
        return True, body_close + 1

    def _skip_ctor_inits(self, i: int, end: int) -> int:
        """Skips `name(args), name{args}, ...` and returns the index of the
        body '{'."""
        toks = self.toks
        j = i
        while j < end:
            text = toks[j].text
            if toks[j].kind == "id" or text in ("::", ","):
                j += 1
                continue
            if text in ("(", "{"):
                # An opener directly after an identifier is an initializer;
                # otherwise it is the constructor body.
                if j > i and (toks[j - 1].kind == "id"
                              or toks[j - 1].text == ">"):
                    j = match_paren(toks, j) + 1
                    continue
                return j
            if text == "<":  # templated base initializer
                j += 1
                continue
            if text == ">":
                j += 1
                continue
            return j
        return j

    def _function_name(self, paren: int, ctx: list[str]) -> tuple[str, str]:
        """Name and owning class for the function whose '(' is at paren."""
        toks = self.toks
        parts: list[str] = []
        j = paren - 1
        while j >= 0 and (toks[j].kind == "id" or toks[j].text in ("::", "~")):
            if toks[j].kind == "id":
                parts.append(toks[j].text)
            if toks[j].text == "::" or toks[j].kind == "id":
                j -= 1
                continue
            j -= 1
        parts.reverse()
        name = parts[-1] if parts else "<anon>"
        # `World::run` defined out of class: the owning class is the
        # second-to-last qualifier; otherwise the innermost class context.
        cls = ""
        if len(parts) >= 2 and toks[paren - 2].text == "::":
            cls = parts[-2]
        else:
            for c in reversed(ctx):
                if c and c != "<anon>":
                    cls = c
                    break
        return name, cls

    # ---------------- declarations ----------------

    def _extract_decls(self, start: int, end: int, ctx: list[str],
                       fn: Function | None) -> None:
        toks = self.toks
        cls = ""
        for c in reversed(ctx):
            if c and c != "<anon>":
                cls = c
                break
        i = start
        while i < end:
            t = toks[i]
            if t.kind != "id":
                i += 1
                continue
            text = t.text
            nxt = toks[i + 1] if i + 1 < end else None
            if text == "AnnotatedMutex" and nxt is not None \
                    and nxt.kind == "id":
                decl = self._mutex_decl(i + 1, end, cls, annotated=True)
                (fn.local_mutexes if fn is not None
                 else self.model.mutexes).append(decl)
                i += 2
                continue
            if text == "mutex" and self._prev_is_std(i) and nxt is not None \
                    and nxt.kind == "id":
                decl = self._mutex_decl(i + 1, end, cls, annotated=False)
                (fn.local_mutexes if fn is not None
                 else self.model.mutexes).append(decl)
                i += 2
                continue
            if text in ("AnnotatedCondVar", "condition_variable",
                        "condition_variable_any") and nxt is not None \
                    and nxt.kind == "id":
                self.model.condvars.add(nxt.text)
                i += 2
                continue
            if text == "Tensor":
                var = self._declared_name(i + 1, end)
                if var:
                    self.model.tensors.add(var)
                i += 1
                continue
            if text in ("unordered_map", "unordered_set", "unordered_multimap",
                        "unordered_multiset"):
                var = self._after_template_name(i + 1, end)
                if var:
                    self.model.unordered.add(var)
                i += 1
                continue
            if text == "MappedFrame":
                var = self._declared_name(i + 1, end)
                if var:
                    self.model.mapped_frames.add(var)
                i += 1
                continue
            if text == "thread_local":
                var = self._thread_local_name(i + 1, end)
                if var:
                    self.model.thread_locals.add(var)
                i += 1
                continue
            if text == "vector" and self._tokens_match(
                    i + 1, ("<", "std", "::", "thread", ">")):
                var = self._after_template_name(i + 1, end)
                if var:
                    self.model.thread_vectors.add(var)
                i += 1
                continue
            if text == "constexpr":
                self._maybe_level_constant(i, end)
                i += 1
                continue
            i += 1

    def _prev_is_std(self, i: int) -> bool:
        toks = self.toks
        return (i >= 2 and toks[i - 1].text == "::"
                and toks[i - 2].text == "std")

    def _tokens_match(self, i: int, texts: tuple[str, ...]) -> bool:
        toks = self.toks
        return all(i + k < len(toks) and toks[i + k].text == texts[k]
                   for k in range(len(texts)))

    def _mutex_decl(self, name_idx: int, end: int, cls: str,
                    annotated: bool) -> MutexDecl:
        toks = self.toks
        decl = MutexDecl(var=toks[name_idx].text, cls=cls,
                         line=toks[name_idx].line, annotated=annotated)
        j = name_idx + 1
        if j < end and toks[j].text in ("{", "("):
            close = match_paren(toks, j)
            for k in range(j, close):
                if toks[k].text == "CANDLE_LOCK_LEVEL" \
                        and toks[k + 1].text == "(":
                    arg_close = match_paren(toks, k + 1)
                    decl.level_text = "".join(
                        tk.text for tk in toks[k + 2:arg_close])
                if toks[k].kind == "str":
                    decl.name_str = toks[k].text.strip('"')
        return decl

    def _declared_name(self, i: int, end: int) -> str:
        """Identifier declared after a type name: skips const/&/*."""
        toks = self.toks
        j = i
        while j < end and (toks[j].text in ("&", "*", "const", "&&")):
            j += 1
        if j < end and toks[j].kind == "id":
            follow = toks[j + 1].text if j + 1 < end else ";"
            if follow in (";", "=", ",", ")", "{", "(", "["):
                return toks[j].text
        return ""

    def _after_template_name(self, i: int, end: int) -> str:
        """Identifier declared after `<...>` template arguments."""
        toks = self.toks
        if i >= end or toks[i].text != "<":
            return ""
        depth = 0
        j = i
        while j < end:
            if toks[j].text == "<":
                depth += 1
            elif toks[j].text == ">":
                depth -= 1
                if depth == 0:
                    return self._declared_name(j + 1, end)
            elif toks[j].text == ">>":
                depth -= 2
                if depth <= 0:
                    return self._declared_name(j + 1, end)
            j += 1
        return ""

    def _thread_local_name(self, i: int, end: int) -> str:
        toks = self.toks
        stop = i
        while stop < end and toks[stop].text not in ("=", ";", "{"):
            stop += 1
        # Strip a trailing array extent: `thread_local Held t[kMax];`.
        j = stop - 1
        if j > i and toks[j].text == "]":
            while j > i and toks[j].text != "[":
                j -= 1
            j -= 1
        while j >= i and toks[j].kind != "id":
            j -= 1
        return toks[j].text if j >= i else ""

    def _maybe_level_constant(self, i: int, end: int) -> None:
        """`inline constexpr int kName = 42;` => level constant."""
        if self._tokens_match(i, ("constexpr", "int")):
            toks = self.toks
            if i + 2 < end and toks[i + 2].kind == "id" \
                    and _LEVEL_CONST_RE.match(toks[i + 2].text) \
                    and i + 4 < end and toks[i + 3].text == "=" \
                    and toks[i + 4].kind == "num":
                try:
                    self.model.level_constants[toks[i + 2].text] = int(
                        toks[i + 4].text)
                except ValueError:
                    pass

    # ---------------- function bodies ----------------

    def _scan_body(self, fn: Function, start: int, end: int,
                   ctx: list[str]) -> None:
        toks = self.toks
        model = self.model
        depth = 0
        # Active RAII acquisitions: (Acquire, depth). Explicit .lock()
        # acquisitions use depth -1 (live until .unlock or function end).
        active: list[tuple[Acquire, int]] = []
        i = start
        while i < end:
            t = toks[i]
            text = t.text
            if text == "{":
                depth += 1
                i += 1
                continue
            if text == "}":
                depth -= 1
                while active and active[-1][1] > depth >= 0 \
                        and active[-1][1] >= 0:
                    active.pop()
                i += 1
                continue

            if t.kind != "id":
                i += 1
                continue

            # Local typed declarations (AnnotatedMutex locals, Tensor
            # locals, MappedFrame locals...) share the file-level extractor.
            if text in ("AnnotatedMutex", "Tensor", "MappedFrame",
                        "thread_local", "AnnotatedCondVar") or \
                    text in ("unordered_map", "unordered_set"):
                self._extract_decls(i, min(self._stmt_end(i, end) + 1, end),
                                    ctx, fn if text == "AnnotatedMutex"
                                    else None)
                if text == "MappedFrame":
                    self._check_frame_temporary(fn, i, end)
                    i += 1
                    continue

            # RAII lock: MutexLock lock(mu); / std::lock_guard<M> l(mu);
            if text in _RAII_LOCKS:
                j = i + 1
                if j < end and toks[j].text == "<":
                    j = self._skip_template(j)
                if j < end and toks[j].kind == "id" and j + 1 < end \
                        and toks[j + 1].text in ("(", "{"):
                    close = match_paren(toks, j + 1)
                    args = split_args(toks, j + 1, close)
                    if args:
                        mu = self._expr_text(args[0])
                        acq = Acquire(mutex=mu, line=t.line)
                        self._note_acquire(fn, active, acq, depth)
                        i = close + 1
                        continue

            # Explicit x.lock() / x.unlock().
            if text in ("lock", "unlock") and i > start \
                    and toks[i - 1].text in (".", "->") \
                    and i + 1 < end and toks[i + 1].text == "(":
                base = self._receiver_chain(i - 1)
                if text == "lock":
                    acq = Acquire(mutex=base, line=t.line)
                    self._note_acquire(fn, active, acq, -1)
                else:
                    for k in range(len(active) - 1, -1, -1):
                        if active[k][0].mutex == base:
                            del active[k]
                            break
                i = match_paren(toks, i + 1) + 1
                continue

            # Condvar waits.
            if text in ("wait", "wait_for", "wait_until") and i > start \
                    and toks[i - 1].text in (".", "->") \
                    and i + 1 < end and toks[i + 1].text == "(":
                close = match_paren(toks, i + 1)
                nargs = len(split_args(toks, i + 1, close))
                model.waits.append(Wait(receiver=self._receiver_chain(i - 1),
                                        method=text, line=t.line,
                                        nargs=nargs))
                i += 2
                continue

            # Thread sites.
            if text in ("thread", "jthread") and self._prev_is_std(i):
                nxt = toks[i + 1] if i + 1 < end else None
                if nxt is not None and nxt.text != "::":
                    if nxt.text in ("(", "{"):
                        model.thread_sites.append(
                            ThreadSite(kind=text, line=t.line))
                    elif nxt.kind == "id" and i + 2 < end \
                            and toks[i + 2].text in ("(", "{"):
                        model.thread_sites.append(
                            ThreadSite(kind=text, line=t.line))
                i += 1
                continue
            if text == "async" and self._prev_is_std(i) and i + 1 < end \
                    and toks[i + 1].text == "(":
                model.thread_sites.append(ThreadSite(kind="async",
                                                     line=t.line))
                i += 1
                continue
            if text == "detach" and i > start \
                    and toks[i - 1].text in (".", "->") \
                    and i + 1 < end and toks[i + 1].text == "(":
                model.thread_sites.append(ThreadSite(kind="detach",
                                                     line=t.line))
                i += 1
                continue
            if text in ("emplace_back", "push_back") and i > start \
                    and toks[i - 1].text in (".", "->") \
                    and self._receiver_chain(i - 1) in model.thread_vectors \
                    and i + 1 < end and toks[i + 1].text == "(":
                model.thread_sites.append(ThreadSite(kind="emplace",
                                                     line=t.line))
                i += 1
                continue

            # Range-for.
            if text == "for" and i + 1 < end and toks[i + 1].text == "(":
                close = match_paren(toks, i + 1)
                colon = self._top_level_colon(i + 1, close)
                if colon is not None:
                    for k in range(colon + 1, close):
                        if toks[k].kind == "id":
                            model.range_fors.append(
                                RangeFor(base=toks[k].text, line=t.line))
                            break
                i += 1
                continue

            # parallel_for lambdas.
            if text == "parallel_for" and i + 1 < end \
                    and toks[i + 1].text == "(":
                close = match_paren(toks, i + 1)
                self._scan_parallel_lambda(i + 1, close)
                # Fall through: also record the call itself below.

            # return <frame>.row(...) / .payload(...) escape.
            if text == "return":
                self._check_frame_return(fn, i, end)
                i += 1
                continue

            # Subscripts on a plain identifier chain.
            if i + 1 < end and toks[i + 1].text == "[" \
                    and text not in _KEYWORDS:
                model.subscripts.append(Subscript(base=text, line=t.line))
                i += 1
                continue

            # Generic calls (with held-lock context). Qualified calls keep
            # their qualifier (`std::to_string`) so they never alias a
            # bare project function name during propagation.
            if i + 1 < end and toks[i + 1].text == "(" \
                    and text not in _KEYWORDS:
                close = match_paren(toks, i + 1)
                nargs = len(split_args(toks, i + 1, close))
                receiver = ""
                name = text
                if i > start and toks[i - 1].text in (".", "->"):
                    receiver = self._receiver_chain(i - 1)
                elif i >= 2 and toks[i - 1].text == "::":
                    name = f"{toks[i - 2].text}::{text}"
                fn.calls.append(Call(
                    name=name, receiver=receiver, line=t.line, nargs=nargs,
                    held=tuple(a.mutex for a, _ in active)))
                i += 1
                continue

            i += 1

    def _note_acquire(self, fn: Function, active: list[tuple[Acquire, int]],
                      acq: Acquire, depth: int) -> None:
        fn.acquires.append(acq)
        if active:
            fn.nested_pairs.append((active[-1][0], acq))
        active.append((acq, depth))

    def _stmt_end(self, i: int, end: int) -> int:
        toks = self.toks
        j = i
        while j < end and toks[j].text != ";":
            if toks[j].text in ("{", "("):
                j = match_paren(toks, j)
            j += 1
        return j

    def _expr_text(self, rng: tuple[int, int]) -> str:
        return "".join(t.text for t in self.toks[rng[0]:rng[1]])

    def _receiver_chain(self, dot_idx: int) -> str:
        """Last identifier of the expression before '.'/'->' at dot_idx."""
        toks = self.toks
        j = dot_idx - 1
        if j >= 0 and toks[j].text == ")":
            return "<call>"
        if j >= 0 and toks[j].kind == "id":
            return toks[j].text
        return ""

    def _top_level_colon(self, open_idx: int, close_idx: int) -> int | None:
        toks = self.toks
        depth = 0
        for j in range(open_idx + 1, close_idx):
            text = toks[j].text
            if toks[j].kind != "punct":
                continue
            if text in ("([{"):
                depth += 1
            elif text in (")]}"):
                depth -= 1
            elif text == ":" and depth == 0:
                return j
            elif text == "::":
                continue
        return None

    def _scan_parallel_lambda(self, open_idx: int, close_idx: int) -> None:
        """Finds the lambda argument of a parallel_for call and records its
        body facts for the determinism checks."""
        toks = self.toks
        j = open_idx + 1
        while j < close_idx:
            if toks[j].text == "[" and toks[j - 1].text in ("(", ","):
                cap_close = match_paren(toks, j)
                k = cap_close + 1
                params: set[str] = set()
                if k < close_idx and toks[k].text == "(":
                    p_close = match_paren(toks, k)
                    for idx in range(k + 1, p_close):
                        if toks[idx].kind == "id" and idx + 1 <= p_close \
                                and toks[idx + 1].text in (",", ")"):
                            params.add(toks[idx].text)
                    k = p_close + 1
                # Skip specifier/attribute tokens up to the body.
                while k < close_idx and toks[k].text != "{":
                    if toks[k].text == "(":
                        k = match_paren(toks, k)
                    k += 1
                if k >= close_idx:
                    return
                body_close = match_paren(toks, k)
                lam = ParallelLambda(line=toks[j].line, params=params,
                                     locals_=set())
                for idx in range(k + 1, body_close):
                    t = toks[idx]
                    if t.kind != "id":
                        continue
                    lam.used_ids.add(t.text)
                    prev = toks[idx - 1]
                    if prev.kind == "id" and (prev.text in _LOCAL_TYPE_HINTS
                                              or prev.text == "const"):
                        lam.locals_.add(t.text)
                    nxt = toks[idx + 1] if idx + 1 < body_close else None
                    if nxt is not None and nxt.text in ("+=", "-=", "*=") \
                            and prev.text not in (".", "->", "]"):
                        lam.compound_assigns.append((t.text, t.line))
                self.model.parallel_lambdas.append(lam)
                return
            if toks[j].text in ("(", "{", "["):
                j = match_paren(toks, j)
            j += 1

    def _check_frame_temporary(self, fn: Function, i: int, end: int) -> None:
        """MappedFrame(...).row(...) — span taken from a temporary."""
        toks = self.toks
        j = i + 1
        if j < end and toks[j].text in ("(", "{"):
            close = match_paren(toks, j)
            if close + 2 < end and toks[close + 1].text == "." \
                    and toks[close + 2].text in ("row", "payload"):
                self.model.span_escapes.append(SpanEscape(
                    line=toks[i].line, what="temporary",
                    detail="span taken from a temporary MappedFrame"))

    def _check_frame_return(self, fn: Function, i: int, end: int) -> None:
        """return <local frame>.row(...) — span outlives its frame."""
        toks = self.toks
        j = i + 1
        if j + 2 < end and toks[j].kind == "id" \
                and toks[j + 1].text in (".", "->") \
                and toks[j + 2].text in ("row", "payload") \
                and toks[j].text in self._body_frame_locals(fn):
            self.model.span_escapes.append(SpanEscape(
                line=toks[i].line, what="return-local",
                detail=f"returns a span into local MappedFrame "
                       f"'{toks[j].text}'"))

    def _body_frame_locals(self, fn: Function) -> set[str]:
        # Coarse: any MappedFrame name seen in this file. Parameters are
        # conservatively included only when declared by value; reference
        # params share the name set — acceptable for a fixture-level check.
        return self.model.mapped_frames
