"""Shared intermediate representation for candle-analyze.

Both frontends (lexical and libclang) lower a translation unit into a
FileModel; the checks consume only this IR, so they are frontend-agnostic.
The IR is deliberately coarse: it models exactly the constructs the
project-specific checks reason about (lock acquisitions, calls with the
held-lock context, parallel-region lambda bodies, a handful of typed
declarations), not general C++ semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cpplex import LexedFile


@dataclass(frozen=True)
class Finding:
    check: str
    path: str  # repo-relative (virtual path for fixtures)
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


@dataclass
class MutexDecl:
    """An AnnotatedMutex (or raw std::mutex) declaration."""
    var: str                 # declared identifier
    cls: str                 # innermost enclosing class ('' for globals)
    line: int
    annotated: bool          # AnnotatedMutex vs raw std::mutex
    level_text: str = ""     # argument text of CANDLE_LOCK_LEVEL(...)
    level: int | None = None  # resolved numeric level
    name_str: str = ""       # diagnostic name string literal, if present


@dataclass
class Acquire:
    """One lock acquisition inside a function body."""
    mutex: str               # source text of the locked expression
    line: int
    level: int | None = None  # resolved by the lock-hierarchy check


@dataclass
class Call:
    """A call site, with the locks held at that point."""
    name: str                # callee name (last identifier before '(')
    receiver: str            # 'x' for x.f()/x->f(), '' for free calls
    line: int
    nargs: int
    held: tuple[str, ...]    # mutex expressions held at the call


@dataclass
class Wait:
    """A condition-variable wait call."""
    receiver: str
    method: str              # wait | wait_for | wait_until
    line: int
    nargs: int


@dataclass
class ThreadSite:
    """A thread-creation (or detach) site."""
    kind: str                # thread | jthread | async | detach | emplace
    line: int


@dataclass
class Subscript:
    base: str                # subscripted expression's last component
    line: int


@dataclass
class RangeFor:
    base: str                # iterated expression's last component
    line: int


@dataclass
class ParallelLambda:
    """Body of a lambda passed to parallel_for (or Pool::run)."""
    line: int
    params: set[str]         # lambda parameter names
    locals_: set[str]        # identifiers declared inside the body
    compound_assigns: list[tuple[str, int]] = field(default_factory=list)
    used_ids: set[str] = field(default_factory=set)


@dataclass
class SpanEscape:
    """A span/pointer derived from a MappedFrame that escapes its frame."""
    line: int
    what: str                # 'return-local' | 'temporary'
    detail: str


@dataclass
class Function:
    name: str
    qualname: str            # Namespace::Class::name as written
    cls: str                 # innermost enclosing class ('' for free)
    path: str
    line: int
    acquires: list[Acquire] = field(default_factory=list)
    nested_pairs: list[tuple[Acquire, Acquire]] = field(default_factory=list)
    calls: list[Call] = field(default_factory=list)
    local_mutexes: list[MutexDecl] = field(default_factory=list)


@dataclass
class FileModel:
    path: str                # repo-relative path used in findings
    lexed: LexedFile
    functions: list[Function] = field(default_factory=list)
    mutexes: list[MutexDecl] = field(default_factory=list)
    condvars: set[str] = field(default_factory=set)
    tensors: set[str] = field(default_factory=set)
    unordered: set[str] = field(default_factory=set)
    thread_locals: set[str] = field(default_factory=set)
    mapped_frames: set[str] = field(default_factory=set)  # local/param names
    thread_vectors: set[str] = field(default_factory=set)
    waits: list[Wait] = field(default_factory=list)
    thread_sites: list[ThreadSite] = field(default_factory=list)
    subscripts: list[Subscript] = field(default_factory=list)
    range_fors: list[RangeFor] = field(default_factory=list)
    parallel_lambdas: list[ParallelLambda] = field(default_factory=list)
    span_escapes: list[SpanEscape] = field(default_factory=list)
    level_constants: dict[str, int] = field(default_factory=dict)


@dataclass
class Project:
    """Everything the checks see: one FileModel per analyzed file."""
    files: list[FileModel]
    level_constants: dict[str, int] = field(default_factory=dict)

    def finish(self) -> None:
        """Merge per-file level-constant tables (lock_order.h defines them;
        fixtures may use bare integers only)."""
        for f in self.files:
            self.level_constants.update(f.level_constants)
