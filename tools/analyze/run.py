#!/usr/bin/env python3
"""candle-analyze: project-specific determinism & concurrency analyzer.

Usage:
  python3 tools/analyze/run.py --build build          # analyze the repo
  python3 tools/analyze/run.py --selftest             # fixture self-tests
  python3 tools/analyze/run.py --fixture tools/analyze/fixtures/foo.cpp
  python3 tools/analyze/run.py --list-checks

Exits non-zero when any finding survives suppression filtering. Suppress a
finding in source with `// candle-analyze: allow(<check>[, <check>...])`
on the same or the preceding line. See README "Static analysis".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import engine  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="candle-analyze",
        description="project-specific determinism & concurrency analyzer")
    parser.add_argument("--build", type=Path, default=None,
                        help="build directory (for compile_commands.json)")
    parser.add_argument("--repo", type=Path, default=engine.repo_root(),
                        help="repository root (default: auto-detected)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "lexical", "libclang"),
                        help="parsing frontend (default: auto — libclang "
                             "when available, else lexical)")
    parser.add_argument("--fixture", type=Path, default=None,
                        help="analyze one fixture file under its declared "
                             "virtual path; exits non-zero on findings")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture self-tests and exit")
    parser.add_argument("--list-checks", action="store_true",
                        help="list check ids and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        from checks import CHECK_IDS
        print("\n".join(CHECK_IDS))
        return 0

    if args.selftest:
        import selftest
        return selftest.run(args.frontend)

    if args.fixture is not None:
        findings = engine.analyze_fixture(args.fixture, args.frontend)
        for f in findings:
            print(f.render())
        print(f"candle-analyze: {len(findings)} finding(s) in fixture "
              f"{args.fixture}")
        return 1 if findings else 0

    repo = args.repo.resolve()
    files = engine.collect_files(repo, args.build)
    if not files:
        print("candle-analyze: no source files found", file=sys.stderr)
        return 2
    findings = engine.analyze_paths(files, repo, args.frontend)
    for f in findings:
        print(f.render())
    print(f"candle-analyze: {len(findings)} finding(s) across "
          f"{len(files)} files")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
