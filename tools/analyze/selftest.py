"""Fixture self-tests for candle-analyze.

Each fixture under tools/analyze/fixtures/ declares its virtual repo path
and the exact findings it must produce:

    // candle-analyze-fixture: virtual-path=src/hvd/fixture_x.cpp
    // candle-analyze-fixture: expect=determinism-unordered:13

The self-test is strict in both directions: every expected (check, line)
must be reported, and no finding outside the expected set may appear —
so it catches both broken checks and false-positive drift. A fixture with
no expect lines (the clean fixture) must produce zero findings.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import engine  # noqa: E402

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"


def parse_expects(text: str) -> set[tuple[str, int]]:
    expects: set[tuple[str, int]] = set()
    for line in text.splitlines():
        s = line.strip()
        if not s.startswith("// candle-analyze-fixture:"):
            continue
        body = s.split(":", 1)[1].strip()
        if body.startswith("expect="):
            check, _, ln = body[len("expect="):].partition(":")
            expects.add((check.strip(), int(ln)))
    return expects


def run(frontend: str = "auto") -> int:
    fixtures = sorted(FIXTURES_DIR.glob("*.cpp"))
    if not fixtures:
        print("candle-analyze selftest: no fixtures found", file=sys.stderr)
        return 2
    failures = 0
    total_expects = 0
    for fx in fixtures:
        expects = parse_expects(fx.read_text(encoding="utf-8"))
        total_expects += len(expects)
        findings = engine.analyze_fixture(fx, frontend)
        got = {(f.check, f.line) for f in findings}
        missing = sorted(expects - got)
        unexpected = sorted(got - expects)
        if missing or unexpected:
            failures += 1
            print(f"FAIL {fx.name}")
            for check, line in missing:
                print(f"  missing expected finding: [{check}] line {line}")
            for check, line in unexpected:
                msg = next((f.message for f in findings
                            if (f.check, f.line) == (check, line)), "")
                print(f"  unexpected finding: [{check}] line {line}: {msg}")
        else:
            print(f"PASS {fx.name} "
                  f"({len(expects)} expected finding(s) matched)")
    if total_expects == 0:
        print("candle-analyze selftest: no fixture declares any expected "
              "finding — fixtures are not exercising the checks",
              file=sys.stderr)
        return 2
    if failures:
        print(f"candle-analyze selftest: {failures}/{len(fixtures)} "
              f"fixture(s) failed")
        return 1
    print(f"candle-analyze selftest: {len(fixtures)} fixture(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(run())
