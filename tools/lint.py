#!/usr/bin/env python3
"""Repo-specific lint gate for the CANDLE reproduction.

Enforces the conventions clang-tidy does not cover:

  * every header uses `#pragma once` (no ad-hoc include guards)
  * no `using namespace` at any scope in headers
  * no naked `new` / `delete` (ownership goes through containers and
    std::make_unique; placement/comment/string occurrences are ignored)
  * include hygiene: in-repo headers are included with quotes and a
    root-relative path (src/-relative for src/ headers; bench/, examples/,
    and tests/ headers are indexed relative to their own root), system
    headers with angle brackets; a .cpp's first include is its own header
    (self-contained-header check)
  * no tabs, no trailing whitespace, LF line endings, newline at EOF

Thread-spawn sanctioning (formerly a regex here) moved to candle-analyze
(tools/analyze/run.py, check id `thread-site`), which resolves spawn sites
at the token level — including std::async, detached threads, and growth of
std::thread containers — instead of pattern-matching lines.

Usage:
  tools/lint.py            # lint the whole repo
  tools/lint.py FILE...    # lint specific files (CI changed-files mode)

Exit code 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ("src", "tests", "bench", "examples")
CPP_SUFFIXES = {".cpp", ".h"}

# Directories under src/ that form the include namespace (e.g. the header
# comm/communicator.h must be included as "comm/communicator.h").
SRC_ROOT = REPO_ROOT / "src"


def repo_sources() -> list[Path]:
    files: list[Path] = []
    for d in SOURCE_DIRS:
        root = REPO_ROOT / d
        if root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*")) if p.suffix in CPP_SUFFIXES
            )
    return files


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and the contents of string/char literals.

    Line-local heuristic (block comments spanning lines are rare in this
    codebase and caught by review); good enough to avoid false positives on
    e.g. `// never use naked new` or `"new"`.
    """
    out: list[str] = []
    i, n = 0, len(line)
    in_str: str | None = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


NAKED_NEW_RE = re.compile(r"(^|[^\w.])new\s+[A-Za-z_:<(]")
NAKED_DELETE_RE = re.compile(r"(^|[^\w.])delete(\[\])?\s+[A-Za-z_:*(]")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
# Deleted special members: `MutexLock(const MutexLock&) = delete;` must not
# trip the naked-delete check.
DELETED_MEMBER_RE = re.compile(r"=\s*delete")

# Roots whose headers form the include namespace. src/ headers are included
# as "comm/communicator.h"; bench/examples/tests headers relative to their
# own root ("harness.h").
HEADER_ROOTS = ("src", "bench", "examples", "tests")


class Linter:
    def __init__(self) -> None:
        self.violations: list[str] = []
        self.known_headers: set[str] = set()
        for d in HEADER_ROOTS:
            root = REPO_ROOT / d
            if root.is_dir():
                self.known_headers |= {
                    str(p.relative_to(root)) for p in root.rglob("*.h")
                }

    def report(self, path: Path, line_no: int, rule: str, msg: str) -> None:
        try:
            rel: Path | str = path.relative_to(REPO_ROOT)
        except ValueError:
            rel = path
        self.violations.append(f"{rel}:{line_no}: [{rule}] {msg}")

    def lint_file(self, path: Path) -> None:
        raw = path.read_bytes()
        if b"\r" in raw:
            self.report(path, 1, "line-endings", "CRLF line ending found")
        if raw and not raw.endswith(b"\n"):
            self.report(path, len(raw.splitlines()), "eof-newline",
                        "missing newline at end of file")
        text = raw.decode("utf-8", errors="replace")
        lines = text.splitlines()

        if path.suffix == ".h":
            self.lint_header(path, lines)
        else:
            self.lint_self_include(path, lines)

        for i, line in enumerate(lines, start=1):
            if "\t" in line:
                self.report(path, i, "tabs", "tab character (use spaces)")
            if line != line.rstrip():
                self.report(path, i, "trailing-ws", "trailing whitespace")
            code = strip_comments_and_strings(line)
            if "NOLINT" in line:
                continue
            if NAKED_NEW_RE.search(code) and "placement" not in line:
                self.report(path, i, "naked-new",
                            "naked `new` (use containers/std::make_unique)")
            if (NAKED_DELETE_RE.search(code)
                    and not DELETED_MEMBER_RE.search(code)):
                self.report(path, i, "naked-delete", "naked `delete`")
            # The include check reads the raw line: the stripper blanks
            # string-literal contents, which is exactly the include target.
            self.lint_include(path, i, line)

    def lint_header(self, path: Path, lines: list[str]) -> None:
        if not any(line.strip() == "#pragma once" for line in lines):
            self.report(path, 1, "pragma-once",
                        "header missing `#pragma once`")
        for i, line in enumerate(lines, start=1):
            if "NOLINT" in line:
                continue
            if USING_NAMESPACE_RE.match(strip_comments_and_strings(line)):
                self.report(path, i, "using-namespace",
                            "`using namespace` in a header")

    def lint_self_include(self, path: Path, lines: list[str]) -> None:
        """A src/ .cpp must include its own header first (self-containment)."""
        try:
            rel = path.relative_to(SRC_ROOT)
        except ValueError:
            return  # tests/bench/examples have no paired header
        own_header = str(rel.with_suffix(".h"))
        if own_header not in self.known_headers:
            return  # standalone .cpp (e.g. a main)
        for line in lines:
            m = INCLUDE_RE.match(line)
            if m is None:
                continue
            if not (m.group(1) == '"' and m.group(2) == own_header):
                self.report(path, lines.index(line) + 1, "self-include",
                            f'first include must be "{own_header}"')
            return

    def lint_include(self, path: Path, line_no: int, code: str) -> None:
        m = INCLUDE_RE.match(code)
        if m is None:
            return
        delim, target = m.group(1), m.group(2)
        if delim == '"':
            same_dir = (path.parent / target).exists()
            if target not in self.known_headers and not same_dir:
                self.report(path, line_no, "include-hygiene",
                            f'"{target}" is not a src/-relative repo header '
                            "(system headers use <>)")
        elif target in self.known_headers:
            self.report(path, line_no, "include-hygiene",
                        f"repo header <{target}> must be included with "
                        "quotes")


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        files = []
        for a in argv[1:]:
            p = Path(a).resolve()
            if not p.exists():
                print(f"lint.py: error: no such file: {a}", file=sys.stderr)
                return 2
            if p.suffix in CPP_SUFFIXES:
                files.append(p)
    else:
        files = repo_sources()

    linter = Linter()
    for f in files:
        linter.lint_file(f)

    for v in linter.violations:
        print(v)
    print(f"lint.py: {len(files)} files checked, "
          f"{len(linter.violations)} violation(s)")
    return 1 if linter.violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
